// Package zfp implements ZFP-lite, a from-scratch reimplementation of the
// fixed-accuracy mode of Lindstrom's ZFP, the paper's transform-based
// baseline (§6.1.3). The pipeline follows the published design:
//
//  1. partition the field into 4^d blocks (padded at the edges),
//  2. per block, align values to a common exponent in 64-bit fixed point,
//  3. decorrelate with ZFP's integer lifting transform along each dimension,
//  4. reorder coefficients by total degree, convert to negabinary,
//  5. truncate below the accuracy threshold and entropy-code.
//
// The stream layout is simplified relative to real ZFP (varint coefficients
// + DEFLATE instead of embedded group-tested bitplanes), which preserves the
// properties the paper's comparison relies on: ZFP is the fastest compressor
// and its ratio trails the interpolation-based ones. See DESIGN.md.
package zfp

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/codec"
	"repro/internal/grid"
	"repro/internal/nb"
)

const magic = 0x50465A // "ZFP"

// blockSide is ZFP's fixed block extent per dimension.
const blockSide = 4

// fracBits is the fixed-point precision: values are scaled so the block
// maximum sits just below 2^fracBits. Headroom above fracBits absorbs
// transform growth.
const fracBits = 48

// Codec implements lossy.Codec.
type Codec struct{}

// New returns a ZFP-lite codec.
func New() *Codec { return &Codec{} }

// Name implements lossy.Codec.
func (c *Codec) Name() string { return "ZFP" }

// ampFactor bounds the L∞ growth of the inverse transform per dimension:
// the largest absolute row sum of the inverse matrix 1/4·(4 6 -4 -1; ...)
// is 15/4.
const ampFactor = 15.0 / 4.0

// Compress implements lossy.Codec.
func (c *Codec) Compress(g *grid.Grid[float64], eb float64) ([]byte, error) {
	if !(eb > 0) || math.IsInf(eb, 0) {
		return nil, fmt.Errorf("zfp: error bound must be positive and finite, got %v", eb)
	}
	shape := g.Shape()
	nd := len(shape)
	blockLen := 1
	for i := 0; i < nd; i++ {
		blockLen *= blockSide
	}
	// Per-coefficient truncation tolerance that keeps the block-wise L∞
	// reconstruction error within eb after inverse-transform amplification.
	tol := eb / (2 * math.Pow(ampFactor, float64(nd)))

	var body bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		body.Write(scratch[:n])
	}

	blockVals := make([]float64, blockLen)
	fixed := make([]int64, blockLen)
	forEachBlock(shape, func(origin []int) {
		gatherBlock(g, origin, blockVals)
		// Common scale: largest magnitude in the block.
		maxMag := 0.0
		bad := false
		for _, v := range blockVals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				bad = true
			}
			if a := math.Abs(v); a > maxMag {
				maxMag = a
			}
		}
		if bad {
			// Rare escape: store the block raw. Mark with exponent flag.
			putUvarint(rawBlockMarker)
			for _, v := range blockVals {
				var b [8]byte
				binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
				body.Write(b[:])
			}
			return
		}
		if maxMag == 0 {
			putUvarint(zeroBlockMarker)
			return
		}
		// Fixed-point scale 2^(fracBits - exp) with exp = ceil(log2 maxMag).
		exp := int(math.Ceil(math.Log2(maxMag)))
		scale := math.Ldexp(1, fracBits-exp)
		for i, v := range blockVals {
			fixed[i] = int64(math.Round(v * scale))
		}
		forwardTransform(fixed, nd)
		// Truncation threshold in fixed-point units.
		thr := tol * scale
		shift := 0
		for math.Ldexp(1, shift) <= thr {
			shift++
		}
		if shift > 0 {
			shift-- // 2^shift <= thr: dropping `shift` low bits errs < thr
		}
		putUvarint(uint64(exp - expBias)) // biased exponent, below the markers
		putUvarint(uint64(shift))
		for _, i := range degreeOrder(nd) {
			u := nb.Encode(fixed[i]) >> uint(shift)
			putUvarint(u)
		}
	})

	payload := codec.EncodeBlock(body.Bytes())

	var out bytes.Buffer
	w := func(v interface{}) { binary.Write(&out, binary.LittleEndian, v) }
	w(uint32(magic))
	w(eb)
	w(uint32(body.Len()))
	w(uint32(len(payload)))
	out.Write(payload)
	return out.Bytes(), nil
}

// Exponent encoding: biased so ordinary exponents never collide with the
// markers below.
const (
	expBias         = -20000
	zeroBlockMarker = 60000
	rawBlockMarker  = 60001
)

// Decompress implements lossy.Codec.
func (c *Codec) Decompress(blob []byte, shape grid.Shape) (*grid.Grid[float64], error) {
	r := bytes.NewReader(blob)
	rd := func(v interface{}) error { return binary.Read(r, binary.LittleEndian, v) }
	var m uint32
	if err := rd(&m); err != nil || m != magic {
		return nil, fmt.Errorf("zfp: bad magic")
	}
	var eb float64
	if err := rd(&eb); err != nil {
		return nil, err
	}
	var bodyLen, payLen uint32
	if err := rd(&bodyLen); err != nil {
		return nil, err
	}
	if err := rd(&payLen); err != nil {
		return nil, err
	}
	payload := make([]byte, payLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	bodyBytes, err := codec.DecodeBlock(payload, int(bodyLen))
	if err != nil {
		return nil, err
	}
	body := bytes.NewReader(bodyBytes)

	g, err := grid.New[float64](shape)
	if err != nil {
		return nil, err
	}
	nd := len(shape)
	blockLen := 1
	for i := 0; i < nd; i++ {
		blockLen *= blockSide
	}
	blockVals := make([]float64, blockLen)
	fixed := make([]int64, blockLen)
	var decodeErr error
	forEachBlock(shape, func(origin []int) {
		if decodeErr != nil {
			return
		}
		tag, err := binary.ReadUvarint(body)
		if err != nil {
			decodeErr = err
			return
		}
		switch tag {
		case zeroBlockMarker:
			for i := range blockVals {
				blockVals[i] = 0
			}
		case rawBlockMarker:
			var b [8]byte
			for i := range blockVals {
				if _, err := io.ReadFull(body, b[:]); err != nil {
					decodeErr = err
					return
				}
				blockVals[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
			}
		default:
			exp := int(tag) + expBias
			shiftU, err := binary.ReadUvarint(body)
			if err != nil {
				decodeErr = err
				return
			}
			shift := int(shiftU)
			for _, i := range degreeOrder(nd) {
				u, err := binary.ReadUvarint(body)
				if err != nil {
					decodeErr = err
					return
				}
				fixed[i] = nb.Decode(u << uint(shift))
			}
			inverseTransform(fixed, nd)
			scale := math.Ldexp(1, fracBits-exp)
			for i := range blockVals {
				blockVals[i] = float64(fixed[i]) / scale
			}
		}
		scatterBlock(g, origin, blockVals)
	})
	if decodeErr != nil {
		return nil, fmt.Errorf("zfp: decode: %w", decodeErr)
	}
	return g, nil
}

// forEachBlock visits every 4^d block origin in row-major order.
func forEachBlock(shape grid.Shape, fn func(origin []int)) {
	nd := len(shape)
	origin := make([]int, nd)
	var rec func(d int)
	rec = func(d int) {
		if d == nd {
			fn(origin)
			return
		}
		for o := 0; o < shape[d]; o += blockSide {
			origin[d] = o
			rec(d + 1)
		}
	}
	rec(0)
}

// gatherBlock copies a block into vals, clamping coordinates at the edges
// (ZFP pads partial blocks by replicating the last layer, which keeps the
// transform smooth).
func gatherBlock(g *grid.Grid[float64], origin []int, vals []float64) {
	shape := g.Shape()
	nd := len(shape)
	idx := make([]int, nd)
	for i := range vals {
		rem := i
		for d := nd - 1; d >= 0; d-- {
			c := origin[d] + rem%blockSide
			rem /= blockSide
			if c >= shape[d] {
				c = shape[d] - 1
			}
			idx[d] = c
		}
		vals[i] = g.At(idx...)
	}
}

// scatterBlock writes a block back, skipping padded cells.
func scatterBlock(g *grid.Grid[float64], origin []int, vals []float64) {
	shape := g.Shape()
	nd := len(shape)
	idx := make([]int, nd)
	for i := range vals {
		rem := i
		ok := true
		for d := nd - 1; d >= 0; d-- {
			c := origin[d] + rem%blockSide
			rem /= blockSide
			if c >= shape[d] {
				ok = false
				break
			}
			idx[d] = c
		}
		if ok {
			g.Set(vals[i], idx...)
		}
	}
}

// fwdLift is ZFP's forward integer lifting of a 4-vector (the published
// non-orthogonal transform 1/16·(4 4 4 4; 5 1 -1 -5; -4 4 4 -4; -2 6 -6 2)).
func fwdLift(p []int64, s int) {
	x, y, z, w := p[0], p[s], p[2*s], p[3*s]
	x += w
	x >>= 1
	w -= x
	z += y
	z >>= 1
	y -= z
	x += z
	x >>= 1
	z -= x
	w += y >> 1
	y -= w >> 1
	p[0], p[s], p[2*s], p[3*s] = x, y, z, w
}

// invLift inverts fwdLift step by step. The >>1 stages of the forward
// transform drop one bit each, so inversion is exact up to ±1 fixed-point
// unit per stage — the "nearly orthogonal" round-off inherent to ZFP's
// integer transform, negligible at 48 fractional bits.
func invLift(p []int64, s int) {
	x, y, z, w := p[0], p[s], p[2*s], p[3*s]
	// Undo: w += y>>1 ; y -= w>>1.
	y += w >> 1
	w -= y >> 1
	// Undo: x += z ; x >>= 1 ; z -= x.
	z += x
	x <<= 1
	x -= z
	// Undo: z += y ; z >>= 1 ; y -= z.
	y += z
	z <<= 1
	z -= y
	// Undo: x += w ; x >>= 1 ; w -= x.
	w += x
	x <<= 1
	x -= w
	p[0], p[s], p[2*s], p[3*s] = x, y, z, w
}

// forwardTransform applies fwdLift along every dimension of a 4^d block,
// innermost (contiguous) dimension first.
func forwardTransform(block []int64, nd int) {
	stride := 1
	for d := nd - 1; d >= 0; d-- {
		liftDim(block, stride, fwdLift)
		stride *= blockSide
	}
}

// inverseTransform applies invLift along the dimensions in reverse order.
func inverseTransform(block []int64, nd int) {
	stride := 1
	for d := nd - 1; d >= 0; d-- {
		stride *= blockSide
	}
	for d := 0; d < nd; d++ {
		stride /= blockSide
		liftDim(block, stride, invLift)
	}
}

// liftDim applies a 4-vector lifting to every line of the block along the
// dimension with the given stride.
func liftDim(block []int64, stride int, lift func([]int64, int)) {
	outer := len(block) / (blockSide * stride)
	for o := 0; o < outer; o++ {
		base := (o/stride)*(blockSide*stride) + o%stride
		lift(block[base:], stride)
	}
}

// degreeOrder returns the coefficient visit order sorted by total degree
// (sum of per-dimension indices), ZFP's zigzag generalization: low-degree
// (high-energy) coefficients first, which groups large magnitudes for the
// entropy coder.
func degreeOrder(nd int) []int {
	if o, ok := degreeOrders[nd]; ok {
		return o
	}
	n := 1
	for i := 0; i < nd; i++ {
		n *= blockSide
	}
	type entry struct{ deg, idx int }
	entries := make([]entry, n)
	for i := 0; i < n; i++ {
		deg := 0
		rem := i
		for d := 0; d < nd; d++ {
			deg += rem % blockSide
			rem /= blockSide
		}
		entries[i] = entry{deg, i}
	}
	// Stable counting sort by degree.
	maxDeg := nd*(blockSide-1) + 1
	buckets := make([][]int, maxDeg)
	for _, e := range entries {
		buckets[e.deg] = append(buckets[e.deg], e.idx)
	}
	order := make([]int, 0, n)
	for _, b := range buckets {
		order = append(order, b...)
	}
	degreeOrders[nd] = order
	return order
}

var degreeOrders = map[int][]int{}
