package zfp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/grid"
)

func TestLiftInvertibility(t *testing.T) {
	// fwdLift's >>1 stages drop one bit each; invLift must recover the
	// original up to the documented ±few fixed-point units.
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 1000; trial++ {
		var p, orig [4]int64
		for i := range p {
			p[i] = int64(r.Intn(1<<40)) - 1<<39
			orig[i] = p[i]
		}
		fwdLift(p[:], 1)
		invLift(p[:], 1)
		for i := range p {
			if d := p[i] - orig[i]; d > 4 || d < -4 {
				t.Fatalf("trial %d: element %d off by %d", trial, i, d)
			}
		}
	}
}

func TestLiftDecorrelatesSmoothLine(t *testing.T) {
	// On a linear ramp: x captures the mean exactly and the curvature
	// coefficient z vanishes; y and w legitimately carry the linear trend.
	p := []int64{1000, 2000, 3000, 4000}
	fwdLift(p, 1)
	if p[0] != 2500 {
		t.Errorf("mean coefficient %d, want 2500", p[0])
	}
	if abs(p[2]) > 2 {
		t.Errorf("curvature coefficient %d, want ~0", p[2])
	}
	// A constant block must concentrate everything into x.
	q := []int64{7000, 7000, 7000, 7000}
	fwdLift(q, 1)
	if q[0] != 7000 || q[1] != 0 || q[2] != 0 || q[3] != 0 {
		t.Errorf("constant block transformed to %v", q)
	}
}

func abs(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestTransformRoundTrip3D(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	block := make([]int64, 64)
	orig := make([]int64, 64)
	for i := range block {
		block[i] = int64(r.Intn(1 << 30))
		orig[i] = block[i]
	}
	forwardTransform(block, 3)
	inverseTransform(block, 3)
	for i := range block {
		if d := block[i] - orig[i]; d > 16 || d < -16 {
			t.Fatalf("element %d off by %d", i, d)
		}
	}
}

func TestDegreeOrderIsPermutation(t *testing.T) {
	for nd := 1; nd <= 4; nd++ {
		order := degreeOrder(nd)
		n := 1
		for i := 0; i < nd; i++ {
			n *= 4
		}
		if len(order) != n {
			t.Fatalf("nd=%d: %d entries, want %d", nd, len(order), n)
		}
		seen := make([]bool, n)
		for _, idx := range order {
			if idx < 0 || idx >= n || seen[idx] {
				t.Fatalf("nd=%d: bad/dup index %d", nd, idx)
			}
			seen[idx] = true
		}
		// Degrees must be non-decreasing along the order.
		deg := func(i int) int {
			d := 0
			for k := 0; k < nd; k++ {
				d += i % 4
				i /= 4
			}
			return d
		}
		for i := 1; i < len(order); i++ {
			if deg(order[i]) < deg(order[i-1]) {
				t.Fatalf("nd=%d: degree order violated at %d", nd, i)
			}
		}
	}
}

func TestPartialBlocksAtEdges(t *testing.T) {
	// Shapes not divisible by 4 exercise gather/scatter padding.
	c := New()
	for _, shape := range []grid.Shape{{5}, {6, 7}, {5, 6, 7}, {9, 3, 5}} {
		g := grid.MustNew[float64](shape)
		r := rand.New(rand.NewSource(3))
		prev := 0.0
		for i := range g.Data() {
			prev += r.NormFloat64() * 0.1
			g.Data()[i] = prev // smooth-ish random walk
		}
		eb := 1e-3
		blob, err := c.Compress(g, eb)
		if err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		rec, err := c.Decompress(blob, shape)
		if err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		for i := range g.Data() {
			if math.Abs(g.Data()[i]-rec.Data()[i]) > eb {
				t.Fatalf("%v: element %d error %g", shape, i,
					math.Abs(g.Data()[i]-rec.Data()[i]))
			}
		}
	}
}

func TestNaNBlockEscape(t *testing.T) {
	c := New()
	shape := grid.Shape{8, 8}
	g := grid.MustNew[float64](shape)
	for i := range g.Data() {
		g.Data()[i] = float64(i)
	}
	g.Data()[10] = math.NaN()
	blob, err := c.Compress(g, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := c.Decompress(blob, shape)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(rec.Data()[10]) {
		t.Errorf("NaN lost: %v", rec.Data()[10])
	}
	// The raw-escaped block reproduces its other values exactly too.
	if rec.Data()[11] != 11 {
		t.Errorf("raw block value %v", rec.Data()[11])
	}
}

func TestZeroBlocks(t *testing.T) {
	c := New()
	shape := grid.Shape{16, 16}
	g := grid.MustNew[float64](shape) // all zeros
	blob, err := c.Compress(g, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) > 200 {
		t.Errorf("all-zero field compressed to %d bytes", len(blob))
	}
	rec, err := c.Decompress(blob, shape)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range rec.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v", i, v)
		}
	}
}
