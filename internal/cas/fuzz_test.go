package cas

import (
	"bytes"
	"os"
	"testing"
)

// FuzzManifestDecode feeds arbitrary bytes to the manifest decoder. The
// contract under corrupt input is: return an error — never panic, never
// OOM on a hostile count, and never hand back a manifest that violates
// its own invariants. Accepted input must re-encode bit-identically
// (decode is the inverse of encode, so "accepted but different" would be
// silent corruption).
func FuzzManifestDecode(f *testing.F) {
	good, err := EncodeManifest(&Manifest{
		Field: "f", T: 0,
		Shape: []int{8}, Chunk: []int{4}, Scalar: 0, ErrorBound: 1e-6,
		Tiles: []TileRef{{Score: ScoreOf([]byte("a")), Size: 3}, {Score: ScoreOf([]byte("b")), Size: 4}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("IPCM"))
	truncated := good[:len(good)-7]
	f.Add(truncated)
	flipped := append([]byte(nil), good...)
	flipped[9] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := DecodeManifest(raw)
		if err != nil {
			return
		}
		if err := m.validate(); err != nil {
			t.Fatalf("decode accepted a manifest its own validate rejects: %v", err)
		}
		re, err := EncodeManifest(m)
		if err != nil {
			t.Fatalf("accepted manifest fails to re-encode: %v", err)
		}
		if !bytes.Equal(re, raw) {
			t.Fatalf("manifest is not a fixed point: %d bytes in, %d bytes re-encoded", len(raw), len(re))
		}
	})
}

// FuzzCASPut drives the put→seal→reopen→read cycle with arbitrary tile
// contents and then corrupts the stored blob at an arbitrary offset. The
// read path must either return the exact original bytes or an error —
// silently-wrong data is the one forbidden outcome.
func FuzzCASPut(f *testing.F) {
	f.Add([]byte("tile-zero"), []byte("tile-one"), uint16(4), byte(0xff))
	f.Add([]byte{0}, []byte{0}, uint16(0), byte(1))
	f.Add(bytes.Repeat([]byte{0xab}, 300), []byte("x"), uint16(299), byte(0x80))

	f.Fuzz(func(t *testing.T, tile0, tile1 []byte, pos uint16, flip byte) {
		if len(tile0) == 0 || len(tile1) == 0 {
			return // Put rejects empty tiles; covered by unit tests
		}
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		m := seriesManifest("f", 0, 2)
		if _, err := s.Put(m, [][]byte{tile0, tile1}); err != nil {
			t.Fatalf("put: %v", err)
		}
		if err := s.Seal(); err != nil {
			t.Fatalf("seal: %v", err)
		}

		r, err := Open(dir)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		got0, err := r.ReadBlob(ScoreOf(tile0))
		if err != nil || !bytes.Equal(got0, tile0) {
			t.Fatalf("tile0 does not read back: %v", err)
		}
		got1, err := r.ReadBlob(ScoreOf(tile1))
		if err != nil || !bytes.Equal(got1, tile1) {
			t.Fatalf("tile1 does not read back: %v", err)
		}

		// Corrupt tile0's blob file at pos and read through a fresh store
		// (no verified-set shortcut): either the flip was a no-op and the
		// bytes stay exact, or the read errors.
		if flip == 0 {
			return
		}
		path, err := r.blobPath(ScoreOf(tile0), false)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[int(pos)%len(raw)] ^= flip
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		c, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		// A nonzero flip always changes the content, so the score check must
		// fail — returning data here would be silent corruption.
		got, err := c.ReadBlob(ScoreOf(tile0))
		if err == nil {
			t.Fatalf("corrupted blob read back %d bytes instead of an error", len(got))
		}
	})
}
