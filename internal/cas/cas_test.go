package cas

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// tileBytes builds a deterministic pseudo-random tile blob seeded by
// (field, t, i): distinct seeds give distinct contents, equal seeds give
// bit-equal contents — the property the dedup tests lean on.
func tileBytes(seed string, n int) []byte {
	out := make([]byte, 0, n)
	var block [32]byte
	sum := sha256.Sum256([]byte(seed))
	for len(out) < n {
		block = sha256.Sum256(sum[:])
		sum = block
		out = append(out, block[:]...)
	}
	return out[:n]
}

// seriesManifest describes a 1-D field of ntiles tiles (chunk edge 4,
// extent 4*ntiles) — the simplest geometry whose tiling count matches any
// desired tile count.
func seriesManifest(field string, t, ntiles int) *Manifest {
	return &Manifest{
		Field:      field,
		T:          t,
		Shape:      []int{4 * ntiles},
		Chunk:      []int{4},
		Scalar:     0,
		ErrorBound: 1e-6,
	}
}

// putSeries stages one snapshot whose tile i holds the bytes tiles[i].
func putSeries(t *testing.T, s *Store, field string, tiles [][]byte) PutStats {
	t.Helper()
	m := seriesManifest(field, s.NextT(field), len(tiles))
	st, err := s.Put(m, tiles)
	if err != nil {
		t.Fatalf("Put %s@t%d: %v", field, m.T, err)
	}
	return st
}

// diskBlobs walks blobs/ and returns every blob file keyed by its name,
// verifying on the way that each file's SHA-256 matches it — the
// content-addressing invariant, checked against the actual disk state.
func diskBlobs(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	root := filepath.Join(dir, blobsDir)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		sum := sha256.Sum256(b)
		if got := hex.EncodeToString(sum[:]); got != d.Name() {
			t.Errorf("blob file %s hashes to %s", d.Name(), got)
		}
		out[d.Name()] = b
		return nil
	})
	if err != nil {
		t.Fatalf("walking %s: %v", root, err)
	}
	return out
}

// TestPutDedupProperty pins the content-addressing properties the ingest
// path is built on: an identical re-put adds zero blobs, a one-tile
// change adds exactly that tile's blob, and every blob file on disk
// hashes to its own name.
func TestPutDedupProperty(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	tiles := make([][]byte, n)
	for i := range tiles {
		tiles[i] = tileBytes(fmt.Sprintf("base-%d", i), 100+i)
	}
	st := putSeries(t, s, "f", tiles)
	if st.NewBlobs != n || st.DedupBlobs != 0 {
		t.Fatalf("t0: NewBlobs=%d DedupBlobs=%d, want %d/0", st.NewBlobs, st.DedupBlobs, n)
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}

	// Identical re-put: zero new blobs, everything deduplicated.
	st = putSeries(t, s, "f", tiles)
	if st.NewBlobs != 0 || st.DedupBlobs != n {
		t.Fatalf("identical t1: NewBlobs=%d DedupBlobs=%d, want 0/%d", st.NewBlobs, st.DedupBlobs, n)
	}

	// One-tile change: exactly one new blob, of exactly that tile's size.
	changed := append([][]byte(nil), tiles...)
	changed[7] = tileBytes("changed-7", 333)
	st = putSeries(t, s, "f", changed)
	if st.NewBlobs != 1 || st.NewBytes != 333 || st.DedupBlobs != n-1 {
		t.Fatalf("one-tile t2: NewBlobs=%d NewBytes=%d DedupBlobs=%d, want 1/333/%d",
			st.NewBlobs, st.NewBytes, st.DedupBlobs, n-1)
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}

	// Disk state: n+1 unique blobs, each hashing to its file name.
	disk := diskBlobs(t, dir)
	if len(disk) != n+1 {
		t.Fatalf("disk has %d blobs, want %d", len(disk), n+1)
	}
	stats := s.Stats()
	if stats.Blobs != n+1 || stats.Snapshots != 3 {
		t.Fatalf("stats %+v, want %d blobs, 3 snapshots", stats, n+1)
	}

	// Every tile of every snapshot reads back bit-identically.
	for tstep, want := range [][][]byte{tiles, tiles, changed} {
		m, ok := s.Manifest("f", tstep)
		if !ok {
			t.Fatalf("no manifest f@t%d", tstep)
		}
		for i := range m.Tiles {
			got, err := s.ReadBlob(m.Tiles[i].Score)
			if err != nil {
				t.Fatalf("t%d tile %d: %v", tstep, i, err)
			}
			if !bytes.Equal(got, want[i]) {
				t.Fatalf("t%d tile %d reads back wrong bytes", tstep, i)
			}
		}
	}
}

func TestPutAppendOnly(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	putSeries(t, s, "f", [][]byte{tileBytes("a", 10)})
	m := seriesManifest("f", 0, 1)
	if _, err := s.Put(m, [][]byte{tileBytes("b", 10)}); err == nil {
		t.Fatal("re-putting t0 over a staged t0 succeeded; the series must be append-only")
	}
	m = seriesManifest("f", 5, 1)
	if _, err := s.Put(m, [][]byte{tileBytes("b", 10)}); err == nil {
		t.Fatal("skipping to t5 succeeded; the series must be dense")
	}
	if _, err := s.Put(seriesManifest("f", 1, 1), [][]byte{}); err == nil {
		t.Fatal("tile count 0 against a 1-tile tiling succeeded")
	}
	if _, err := s.Put(seriesManifest("f", 1, 1), [][]byte{nil}); err == nil {
		t.Fatal("an empty tile succeeded")
	}
}

// TestSealReopen checks durability: everything sealed is identical after
// a fresh Open, and a staged-but-unsealed epoch is readable before the
// seal and gone after a reopen that never sealed (it lived in memory
// only).
func TestSealReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tiles := [][]byte{tileBytes("x", 64), tileBytes("y", 65)}
	putSeries(t, s, "f", tiles)
	// Staged: readable now.
	m, ok := s.Manifest("f", 0)
	if !ok {
		t.Fatal("staged snapshot not readable")
	}
	if b, err := s.ReadBlob(m.Tiles[0].Score); err != nil || !bytes.Equal(b, tiles[0]) {
		t.Fatalf("staged blob read: %v", err)
	}
	if got := s.Snapshots(); len(got) != 1 || got[0].Sealed {
		t.Fatalf("Snapshots() = %+v, want one unsealed", got)
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m2, ok := s2.Manifest("f", 0)
	if !ok {
		t.Fatal("sealed snapshot lost across reopen")
	}
	for i := range m.Tiles {
		if m.Tiles[i] != m2.Tiles[i] {
			t.Fatalf("tile %d changed across reopen: %+v vs %+v", i, m.Tiles[i], m2.Tiles[i])
		}
		b, err := s2.ReadBlob(m2.Tiles[i].Score)
		if err != nil || !bytes.Equal(b, tiles[i]) {
			t.Fatalf("reopened blob %d: %v", i, err)
		}
	}
	if nt := s2.NextT("f"); nt != 1 {
		t.Fatalf("NextT after reopen = %d, want 1", nt)
	}
}

func TestDeleteAndGC(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	shared := tileBytes("shared", 50)
	only0 := tileBytes("only0", 60)
	only1 := tileBytes("only1", 70)
	putSeries(t, s, "f", [][]byte{shared, only0})
	putSeries(t, s, "f", [][]byte{shared, only1})
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}

	if err := s.Delete("f", 0); err != nil {
		t.Fatal(err)
	}
	st, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	// Only the blob t0 alone referenced may go; the shared blob must stay.
	if st.Blobs != 1 || st.Bytes != 60 {
		t.Fatalf("GC reclaimed %d blobs/%d bytes, want 1/60", st.Blobs, st.Bytes)
	}
	m, ok := s.Manifest("f", 1)
	if !ok {
		t.Fatal("surviving snapshot lost")
	}
	for i := range m.Tiles {
		if _, err := s.ReadBlob(m.Tiles[i].Score); err != nil {
			t.Fatalf("surviving tile %d unreadable after GC: %v", i, err)
		}
	}
	// The deleted time step leaves a hole: the series continues past it.
	if nt := s.NextT("f"); nt != 2 {
		t.Fatalf("NextT after middle delete = %d, want 2", nt)
	}
	// Deleting a staged snapshot is refused with the seal-first hint.
	putSeries(t, s, "f", [][]byte{shared, only0})
	if err := s.Delete("f", 2); err == nil || !strings.Contains(err.Error(), "seal") {
		t.Fatalf("deleting a staged snapshot: %v, want a seal-first error", err)
	}
}

func TestReadBlobCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b := tileBytes("v", 128)
	putSeries(t, s, "f", [][]byte{b})
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	score := ScoreOf(b)
	path, err := s.blobPath(score, false)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[17] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	// A fresh store has not verified the blob yet: the flip must surface
	// as an integrity error, not as wrong data.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.ReadBlob(score); err == nil {
		t.Fatal("reading a corrupted blob succeeded")
	}
	p := make([]byte, 16)
	if _, err := s2.ReadBlobAt(score, p, 32); err == nil {
		t.Fatal("ranged read of a corrupted blob succeeded")
	}
}

// TestCorruptManifestFailsOpen pins loadManifests' hard-error contract: a
// store with a damaged manifest must refuse to open rather than silently
// GC the blobs the manifest referenced.
func TestCorruptManifestFailsOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	putSeries(t, s, "f", [][]byte{tileBytes("v", 40)})
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, manifestsDir, "f@t0"+manifestExt)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("opening a store with a corrupt manifest succeeded")
	}
}

// TestConcurrentPutSealRead exercises the store under the race detector:
// writers appending to independent fields while readers stream blobs and
// a sealer flushes epochs.
func TestConcurrentPutSealRead(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const fields, steps = 4, 6
	var wg sync.WaitGroup
	for f := 0; f < fields; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			field := fmt.Sprintf("f%d", f)
			for step := 0; step < steps; step++ {
				m := seriesManifest(field, step, 3)
				tiles := [][]byte{
					tileBytes(fmt.Sprintf("%s-%d-0", field, step), 90),
					tileBytes("shared-across-everything", 91),
					tileBytes(fmt.Sprintf("%s-%d-2", field, step), 92),
				}
				if _, err := s.Put(m, tiles); err != nil {
					t.Errorf("put %s@t%d: %v", field, step, err)
					return
				}
				for i := range m.Tiles {
					if _, err := s.ReadBlob(m.Tiles[i].Score); err != nil {
						t.Errorf("read %s@t%d tile %d: %v", field, step, i, err)
						return
					}
				}
				if step%2 == 1 {
					if err := s.Seal(); err != nil {
						t.Errorf("seal: %v", err)
						return
					}
				}
			}
		}(f)
	}
	wg.Wait()
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Snapshots != fields*steps {
		t.Fatalf("sealed %d snapshots, want %d", st.Snapshots, fields*steps)
	}
}

func TestSnapshotNames(t *testing.T) {
	for _, bad := range []string{"", "@", "a@b", "f@t-1", "f@tx", "with space@t0", "-leading@t0", "a/b@t0"} {
		if _, _, err := ParseSnapshotName(bad); err == nil {
			t.Errorf("ParseSnapshotName(%q) succeeded", bad)
		}
	}
	f, ts, err := ParseSnapshotName("den_s.1-x@t42")
	if err != nil || f != "den_s.1-x" || ts != 42 {
		t.Fatalf("ParseSnapshotName round trip: %q %d %v", f, ts, err)
	}
	if err := ValidateField("a@b"); err == nil {
		t.Error("ValidateField allowed '@', which snapshot addressing reserves")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := &Manifest{
		Field: "density", T: 7,
		Shape: []int{48, 40, 40}, Chunk: []int{16, 16, 16},
		Scalar: 1, ErrorBound: 1e-6,
	}
	m.Tiles = make([]TileRef, 27)
	for i := range m.Tiles {
		m.Tiles[i] = TileRef{Score: ScoreOf(tileBytes(fmt.Sprint(i), 8)), Size: int64(100 + i)}
	}
	raw, err := EncodeManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeManifest(raw)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := EncodeManifest(got)
	if !bytes.Equal(raw, want) {
		t.Fatal("manifest does not round-trip byte-identically")
	}
	// A flipped checksum byte must be rejected.
	raw[len(raw)-1] ^= 1
	if _, err := DecodeManifest(raw); err == nil {
		t.Fatal("decode accepted a bad checksum")
	}
}
