package cas

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// errInjected is the fault every chaos step injects.
var errInjected = fmt.Errorf("injected crash")

// readManifestFiles snapshots the sealed manifest files (name -> bytes),
// the bit-identity baseline the crash sweep compares against.
func readManifestFiles(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	mdir := filepath.Join(dir, manifestsDir)
	entries, err := os.ReadDir(mdir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), manifestExt) || strings.HasSuffix(e.Name(), stagedExt) {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(mdir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = raw
	}
	return out
}

// TestSealCrashAtEveryStep simulates a crash at every labeled instant of
// the seal commit protocol — before every blob write, manifest stage,
// the journal write, every commit rename, and the cleanup — and checks,
// after recovery by a fresh Open, the all-or-nothing contract:
//
//   - snapshots sealed before the crashed epoch are bit-identical
//   - the crashed epoch is either fully recovered (all manifests of the
//     epoch present, all blobs readable) or fully discarded (none
//     present and the series re-puttable at the same time steps)
//
// The epoch under test holds two snapshots of two fields so a torn
// commit (one manifest renamed, the other not) would be visible.
func TestSealCrashAtEveryStep(t *testing.T) {
	for n := 1; ; n++ {
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}

		// A pre-existing sealed snapshot that must survive every crash.
		baseTiles := [][]byte{tileBytes("base-0", 80), tileBytes("base-1", 81)}
		putSeries(t, s, "a", baseTiles)
		if err := s.Seal(); err != nil {
			t.Fatal(err)
		}
		wantManifests := readManifestFiles(t, dir)
		wantBlobs := diskBlobs(t, dir)

		// The epoch that will crash: a@t1 (sharing one blob with a@t0) and
		// a fresh field b@t0.
		aTiles := [][]byte{baseTiles[0], tileBytes("a1-new", 90)}
		bTiles := [][]byte{tileBytes("b0-new", 95), tileBytes("b0-new2", 96)}
		putSeries(t, s, "a", aTiles)
		putSeries(t, s, "b", bTiles)

		calls := 0
		var crashedAt string
		s.testHookSeal = func(step string) error {
			calls++
			if calls == n {
				crashedAt = step
				return errInjected
			}
			return nil
		}
		err = s.Seal()
		if crashedAt == "" {
			// The hook never fired: n is past the protocol's last step, the
			// seal succeeded, and the sweep is complete.
			if err != nil {
				t.Fatalf("fault-free seal failed: %v", err)
			}
			if n < 5 {
				t.Fatalf("protocol ran only %d steps; the sweep tested nothing", n-1)
			}
			return
		}
		if err == nil {
			t.Fatalf("n=%d: seal succeeded despite the injected crash at %q", n, crashedAt)
		}

		// "Crash": abandon s, recover from disk alone.
		r, err := Open(dir)
		if err != nil {
			t.Fatalf("n=%d (%s): recovery Open: %v", n, crashedAt, err)
		}

		// Prior sealed state must be bit-identical.
		gotManifests := readManifestFiles(t, dir)
		for name, want := range wantManifests {
			if !bytes.Equal(gotManifests[name], want) {
				t.Fatalf("n=%d (%s): sealed manifest %s changed across the crash", n, crashedAt, name)
			}
		}
		for name, want := range wantBlobs {
			score, err := ParseScore(name)
			if err != nil {
				t.Fatal(err)
			}
			got, err := r.ReadBlob(score)
			if err != nil || !bytes.Equal(got, want) {
				t.Fatalf("n=%d (%s): sealed blob %s unreadable after the crash: %v", n, crashedAt, name, err)
			}
		}

		// The crashed epoch: all or nothing.
		_, haveA1 := r.Manifest("a", 1)
		_, haveB0 := r.Manifest("b", 0)
		if haveA1 != haveB0 {
			t.Fatalf("n=%d (%s): torn epoch after recovery: a@t1=%v b@t0=%v", n, crashedAt, haveA1, haveB0)
		}
		if haveA1 {
			for i, want := range [][]byte{aTiles[0], aTiles[1], bTiles[0], bTiles[1]} {
				got, err := r.ReadBlob(ScoreOf(want))
				if err != nil || !bytes.Equal(got, want) {
					t.Fatalf("n=%d (%s): recovered epoch blob %d unreadable: %v", n, crashedAt, i, err)
				}
			}
			if nt := r.NextT("a"); nt != 2 {
				t.Fatalf("n=%d (%s): NextT(a)=%d after roll-forward, want 2", n, crashedAt, nt)
			}
		} else {
			// Discarded: no staged leftovers, the series continues where the
			// sealed state left it, and re-putting the epoch succeeds.
			if nt := r.NextT("a"); nt != 1 {
				t.Fatalf("n=%d (%s): NextT(a)=%d after discard, want 1", n, crashedAt, nt)
			}
			entries, err := os.ReadDir(filepath.Join(dir, manifestsDir))
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if strings.HasSuffix(e.Name(), stagedExt) || e.Name() == journalName {
					t.Fatalf("n=%d (%s): recovery left %s behind", n, crashedAt, e.Name())
				}
			}
			putSeries(t, r, "a", aTiles)
			putSeries(t, r, "b", bTiles)
			if err := r.Seal(); err != nil {
				t.Fatalf("n=%d (%s): re-seal after discard: %v", n, crashedAt, err)
			}
			if _, ok := r.Manifest("b", 0); !ok {
				t.Fatalf("n=%d (%s): re-put epoch missing after re-seal", n, crashedAt)
			}
		}

		// Orphan blobs from the discarded half-seal are GC-able garbage;
		// a sweep must never touch referenced blobs.
		if _, err := r.GC(); err != nil {
			t.Fatalf("n=%d (%s): GC after recovery: %v", n, crashedAt, err)
		}
		m0, _ := r.Manifest("a", 0)
		for i := range m0.Tiles {
			if _, err := r.ReadBlob(m0.Tiles[i].Score); err != nil {
				t.Fatalf("n=%d (%s): GC removed a referenced blob: %v", n, crashedAt, err)
			}
		}

		if n > 64 {
			t.Fatal("crash sweep did not terminate; the step hook is broken")
		}
	}
}

// TestRecoverRollsForwardJournaledEpoch pins the commit point directly: a
// journal plus staged manifests on disk (the state between steps 3 and 4)
// must recover to fully sealed snapshots.
func TestRecoverRollsForwardJournaledEpoch(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tiles := [][]byte{tileBytes("j", 44)}
	putSeries(t, s, "f", tiles)
	// Crash between journal write and the commit renames.
	calls := 0
	s.testHookSeal = func(step string) error {
		if step == "commit" {
			calls++
			return errInjected
		}
		return nil
	}
	if err := s.Seal(); err == nil {
		t.Fatal("seal succeeded despite the commit-step crash")
	}
	if calls != 1 {
		t.Fatalf("commit step ran %d times, want 1", calls)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestsDir, journalName)); err != nil {
		t.Fatalf("journal missing in the crash state: %v", err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := r.Manifest("f", 0)
	if !ok {
		t.Fatal("journaled epoch not rolled forward")
	}
	got, err := r.ReadBlob(m.Tiles[0].Score)
	if err != nil || !bytes.Equal(got, tiles[0]) {
		t.Fatalf("rolled-forward blob: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestsDir, journalName)); !os.IsNotExist(err) {
		t.Fatal("journal not removed by recovery")
	}
}
