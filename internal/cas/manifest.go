package cas

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// Score is a blob's content address: the SHA-256 of its bytes.
type Score [sha256.Size]byte

// ScoreOf computes the score of a blob.
func ScoreOf(b []byte) Score { return sha256.Sum256(b) }

// String returns the score as lowercase hex, the on-disk blob file name.
func (s Score) String() string { return hex.EncodeToString(s[:]) }

// ParseScore parses the hex form of a score.
func ParseScore(s string) (Score, error) {
	var out Score
	if len(s) != 2*sha256.Size {
		return out, fmt.Errorf("cas: score %q is not %d hex digits", s, 2*sha256.Size)
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return out, fmt.Errorf("cas: score %q is not hex: %v", s, err)
	}
	copy(out[:], b)
	return out, nil
}

// TileRef addresses one compressed tile of a snapshot: its score and its
// exact blob size (recorded so container synthesis and planning need no
// blob reads).
type TileRef struct {
	Score Score
	Size  int64
}

// Manifest describes one snapshot: field name, time step, and the dataset
// geometry plus the ordered tile list (row-major chunk order, exactly as a
// container index records chunks).
type Manifest struct {
	Field      string // field name; see ValidateField
	T          int    // time step, 0-based
	Shape      []int  // dataset extents
	Chunk      []int  // nominal tile shape, same rank
	Scalar     uint8  // element-type code (core.ScalarType's wire value)
	ErrorBound float64
	Tiles      []TileRef
}

// SnapshotName is the dataset name a snapshot is addressable under:
// "field@t3" for time step 3 of field "field".
func SnapshotName(field string, t int) string {
	return fmt.Sprintf("%s@t%d", field, t)
}

// ParseSnapshotName splits "field@t3" back into its parts.
func ParseSnapshotName(name string) (field string, t int, err error) {
	field, rest, ok := strings.Cut(name, "@")
	if !ok || !strings.HasPrefix(rest, "t") {
		return "", 0, fmt.Errorf("cas: %q is not a snapshot name (want field@tN)", name)
	}
	t, err = strconv.Atoi(rest[1:])
	if err != nil || t < 0 {
		return "", 0, fmt.Errorf("cas: %q has a bad time step (want field@tN)", name)
	}
	if err := ValidateField(field); err != nil {
		return "", 0, err
	}
	return field, t, nil
}

// fieldRe is deliberately conservative: field names become file names
// (manifests) and URL path segments (datasets), and '@' is reserved for
// snapshot addressing.
var fieldRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)

// ValidateField rejects field names that cannot serve as manifest file
// names and dataset path segments.
func ValidateField(field string) error {
	if field == "" || len(field) > 200 || !fieldRe.MatchString(field) {
		return fmt.Errorf("cas: invalid field name %q (want [A-Za-z0-9._-]+, starting with an alphanumeric)", field)
	}
	return nil
}

// Name returns the manifest's snapshot name.
func (m *Manifest) Name() string { return SnapshotName(m.Field, m.T) }

// Bytes sums the manifest's tile blob sizes (shared blobs counted once per
// reference — this is the snapshot's logical compressed size, not its
// marginal cost).
func (m *Manifest) Bytes() int64 {
	var n int64
	for i := range m.Tiles {
		n += m.Tiles[i].Size
	}
	return n
}

// Manifest wire format (little-endian), version 1:
//
//	magic "IPCM" | version u8 | rank u8 | scalar u8 | reserved u8
//	fieldLen u16 | field | t u32
//	shape u32*rank | chunk u32*rank | errorBound f64
//	ntiles u32 | ntiles * (score [32] | size i64)
//	checksum [32]  — SHA-256 of every preceding byte
//
// The trailing checksum makes a torn or bit-rotted manifest detectable
// without reference to any blob.
const (
	manifestMagic   = "IPCM"
	manifestVersion = 1
	maxManifestRank = 8
	tileRefSize     = sha256.Size + 8
)

var errManifestCorrupt = errors.New("cas: corrupt manifest")

// validate checks the structural invariants encode relies on and decode
// enforces.
func (m *Manifest) validate() error {
	if err := ValidateField(m.Field); err != nil {
		return err
	}
	if m.T < 0 || m.T > 1<<30 {
		return fmt.Errorf("cas: manifest %q has invalid time step %d", m.Field, m.T)
	}
	if len(m.Shape) == 0 || len(m.Shape) > maxManifestRank || len(m.Chunk) != len(m.Shape) {
		return fmt.Errorf("cas: manifest %q has invalid rank %d/%d", m.Field, len(m.Shape), len(m.Chunk))
	}
	ntiles := 1
	for d := range m.Shape {
		if m.Shape[d] <= 0 || m.Shape[d] > 1<<30 || m.Chunk[d] <= 0 || m.Chunk[d] > 1<<30 {
			return fmt.Errorf("cas: manifest %q has invalid extents %v/%v", m.Field, m.Shape, m.Chunk)
		}
		c := (m.Shape[d] + m.Chunk[d] - 1) / m.Chunk[d]
		if ntiles > (1<<31)/c {
			return fmt.Errorf("cas: manifest %q tiling %v/%v has too many tiles", m.Field, m.Shape, m.Chunk)
		}
		ntiles *= c
	}
	if len(m.Tiles) != ntiles {
		return fmt.Errorf("cas: manifest %q has %d tiles, tiling %v/%v implies %d",
			m.Field, len(m.Tiles), m.Shape, m.Chunk, ntiles)
	}
	for i := range m.Tiles {
		if m.Tiles[i].Size <= 0 {
			return fmt.Errorf("cas: manifest %q tile %d has invalid size %d", m.Field, i, m.Tiles[i].Size)
		}
	}
	return nil
}

// EncodeManifest serializes m, checksummed.
func EncodeManifest(m *Manifest) ([]byte, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.WriteString(manifestMagic)
	buf.WriteByte(manifestVersion)
	buf.WriteByte(uint8(len(m.Shape)))
	buf.WriteByte(m.Scalar)
	buf.WriteByte(0)
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], uint16(len(m.Field)))
	buf.Write(u16[:])
	buf.WriteString(m.Field)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(m.T))
	buf.Write(u32[:])
	for _, e := range m.Shape {
		binary.LittleEndian.PutUint32(u32[:], uint32(e))
		buf.Write(u32[:])
	}
	for _, e := range m.Chunk {
		binary.LittleEndian.PutUint32(u32[:], uint32(e))
		buf.Write(u32[:])
	}
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], math.Float64bits(m.ErrorBound))
	buf.Write(u64[:])
	binary.LittleEndian.PutUint32(u32[:], uint32(len(m.Tiles)))
	buf.Write(u32[:])
	for i := range m.Tiles {
		buf.Write(m.Tiles[i].Score[:])
		binary.LittleEndian.PutUint64(u64[:], uint64(m.Tiles[i].Size))
		buf.Write(u64[:])
	}
	sum := sha256.Sum256(buf.Bytes())
	buf.Write(sum[:])
	return buf.Bytes(), nil
}

// manifestReader is a bounds-checked cursor; every read fails cleanly past
// the end instead of panicking — the fuzz contract.
type manifestReader struct {
	b   []byte
	pos int
}

func (r *manifestReader) take(n int) ([]byte, error) {
	if n < 0 || r.pos+n > len(r.b) || r.pos+n < r.pos {
		return nil, errManifestCorrupt
	}
	out := r.b[r.pos : r.pos+n]
	r.pos += n
	return out, nil
}

// DecodeManifest parses and verifies a manifest. It never panics on
// corrupt input and never returns a manifest that fails validate: any
// truncation, trailing garbage, checksum mismatch, or structural
// inconsistency is an error.
func DecodeManifest(raw []byte) (*Manifest, error) {
	if len(raw) < len(manifestMagic)+4+sha256.Size {
		return nil, errManifestCorrupt
	}
	body, sum := raw[:len(raw)-sha256.Size], raw[len(raw)-sha256.Size:]
	if sha256.Sum256(body) != Score(sum) {
		return nil, fmt.Errorf("cas: manifest checksum mismatch")
	}
	r := &manifestReader{b: body}
	head, err := r.take(len(manifestMagic) + 4)
	if err != nil {
		return nil, err
	}
	if string(head[:len(manifestMagic)]) != manifestMagic {
		return nil, fmt.Errorf("cas: bad manifest magic %q", head[:len(manifestMagic)])
	}
	if head[4] != manifestVersion {
		return nil, fmt.Errorf("cas: unsupported manifest version %d", head[4])
	}
	rank := int(head[5])
	if rank == 0 || rank > maxManifestRank {
		return nil, fmt.Errorf("cas: manifest rank %d out of range", rank)
	}
	m := &Manifest{Scalar: head[6]}
	lb, err := r.take(2)
	if err != nil {
		return nil, err
	}
	fb, err := r.take(int(binary.LittleEndian.Uint16(lb)))
	if err != nil {
		return nil, err
	}
	m.Field = string(fb)
	tb, err := r.take(4)
	if err != nil {
		return nil, err
	}
	m.T = int(binary.LittleEndian.Uint32(tb))
	m.Shape = make([]int, rank)
	m.Chunk = make([]int, rank)
	for d := 0; d < rank; d++ {
		eb, err := r.take(4)
		if err != nil {
			return nil, err
		}
		m.Shape[d] = int(binary.LittleEndian.Uint32(eb))
	}
	for d := 0; d < rank; d++ {
		eb, err := r.take(4)
		if err != nil {
			return nil, err
		}
		m.Chunk[d] = int(binary.LittleEndian.Uint32(eb))
	}
	ebb, err := r.take(8)
	if err != nil {
		return nil, err
	}
	m.ErrorBound = math.Float64frombits(binary.LittleEndian.Uint64(ebb))
	nb, err := r.take(4)
	if err != nil {
		return nil, err
	}
	ntiles := binary.LittleEndian.Uint32(nb)
	// Bound the allocation by the bytes that could encode that many tiles:
	// a corrupt count must not OOM the reader.
	if int64(ntiles) > int64(len(body)-r.pos)/tileRefSize {
		return nil, errManifestCorrupt
	}
	m.Tiles = make([]TileRef, ntiles)
	for i := range m.Tiles {
		sb, err := r.take(sha256.Size)
		if err != nil {
			return nil, err
		}
		copy(m.Tiles[i].Score[:], sb)
		zb, err := r.take(8)
		if err != nil {
			return nil, err
		}
		m.Tiles[i].Size = int64(binary.LittleEndian.Uint64(zb))
	}
	if r.pos != len(body) {
		return nil, fmt.Errorf("cas: %d trailing bytes after manifest", len(body)-r.pos)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return m, nil
}
