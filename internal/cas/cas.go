package cas

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// On-disk layout under the store's root directory:
//
//	blobs/ab/ab12…ef        one file per blob, named by its full score,
//	                        sharded by the first two hex digits
//	manifests/field@t3.ipcm one file per sealed snapshot
//	manifests/*.ipcm.new    staged by a seal in progress (trusted only
//	                        under a journal)
//	manifests/epoch.commit  the seal journal; its rename is the commit point
//	tmp/                    scratch for atomic writes; emptied on Open
const (
	blobsDir     = "blobs"
	manifestsDir = "manifests"
	tmpDir       = "tmp"
	manifestExt  = ".ipcm"
	stagedExt    = ".ipcm.new"
	journalName  = "epoch.commit"
)

// Store is a content-addressed snapshot store rooted at a directory. All
// methods are safe for concurrent use.
type Store struct {
	dir string

	mu        sync.Mutex
	manifests map[string]*Manifest // sealed, by snapshot name
	fields    map[string][]int     // sealed+staged time steps per field, sorted
	refs      map[Score]int        // manifest references per sealed blob
	sizes     map[Score]int64      // size per sealed blob
	blobBytes int64                // sum of sizes (unique blobs)

	// The open epoch: blobs and manifests staged in memory, readable
	// immediately, flushed by Seal.
	epochBlobs     map[Score][]byte
	epochManifests []*Manifest

	verified sync.Map // Score -> struct{}: sealed blobs whose hash was checked

	// testHookSeal, when set, runs before every labeled step of sealEpoch;
	// returning an error aborts the seal at that point, which is how the
	// chaos test simulates a crash at every instant of the commit protocol.
	testHookSeal func(step string) error
}

// Open opens (creating if needed) a store rooted at dir and recovers any
// interrupted seal: a present journal is rolled forward (the epoch had
// committed), stray staged manifests without one are discarded, and the
// scratch directory is emptied.
func Open(dir string) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, blobsDir), filepath.Join(dir, manifestsDir), filepath.Join(dir, tmpDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
	}
	s := &Store{
		dir:        dir,
		manifests:  make(map[string]*Manifest),
		fields:     make(map[string][]int),
		refs:       make(map[Score]int),
		sizes:      make(map[Score]int64),
		epochBlobs: make(map[Score][]byte),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	if err := s.loadManifests(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// recover completes or discards an interrupted seal; see Open.
func (s *Store) recover() error {
	mdir := filepath.Join(s.dir, manifestsDir)
	journal := filepath.Join(mdir, journalName)
	if raw, err := os.ReadFile(journal); err == nil {
		// The journal exists, so every staged manifest it lists was fully
		// written before the commit point: roll the epoch forward.
		for _, name := range strings.Fields(string(raw)) {
			staged := filepath.Join(mdir, name+stagedExt)
			final := filepath.Join(mdir, name+manifestExt)
			if _, err := os.Stat(staged); err == nil {
				if err := os.Rename(staged, final); err != nil {
					return fmt.Errorf("cas: rolling forward %s: %w", name, err)
				}
			}
		}
		if err := os.Remove(journal); err != nil {
			return err
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	// Without a journal, staged manifests belong to an epoch that never
	// committed: discard them. Their blobs (if any landed) are unreferenced
	// and will be swept by GC.
	entries, err := os.ReadDir(mdir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), stagedExt) {
			if err := os.Remove(filepath.Join(mdir, e.Name())); err != nil {
				return err
			}
		}
	}
	// Scratch files are garbage by definition.
	tdir := filepath.Join(s.dir, tmpDir)
	entries, err = os.ReadDir(tdir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if err := os.Remove(filepath.Join(tdir, e.Name())); err != nil {
			return err
		}
	}
	return nil
}

// loadManifests reads every sealed manifest and rebuilds the reference
// counts. A manifest that fails to decode is a hard error: silent
// skipping would make GC treat its blobs as garbage.
func (s *Store) loadManifests() error {
	mdir := filepath.Join(s.dir, manifestsDir)
	entries, err := os.ReadDir(mdir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), manifestExt) || strings.HasSuffix(e.Name(), stagedExt) {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(mdir, e.Name()))
		if err != nil {
			return err
		}
		m, err := DecodeManifest(raw)
		if err != nil {
			return fmt.Errorf("cas: manifest %s: %w", e.Name(), err)
		}
		if m.Name()+manifestExt != e.Name() {
			return fmt.Errorf("cas: manifest file %s declares snapshot %s", e.Name(), m.Name())
		}
		s.indexManifest(m)
	}
	for field := range s.fields {
		sort.Ints(s.fields[field])
	}
	return nil
}

// indexManifest registers a sealed manifest in the in-memory maps.
// Callers hold mu (or are single-threaded during Open).
func (s *Store) indexManifest(m *Manifest) {
	s.manifests[m.Name()] = m
	s.fields[m.Field] = append(s.fields[m.Field], m.T)
	for i := range m.Tiles {
		tr := &m.Tiles[i]
		if s.refs[tr.Score] == 0 {
			s.sizes[tr.Score] = tr.Size
			s.blobBytes += tr.Size
		}
		s.refs[tr.Score]++
	}
}

// PutStats reports what one Put added to the store.
type PutStats struct {
	// NewBlobs/NewBytes count blobs this snapshot introduced — absent from
	// both the sealed store and the open epoch.
	NewBlobs int
	NewBytes int64
	// DedupBlobs/DedupBytes count tile references that resolved to blobs
	// already present.
	DedupBlobs int
	DedupBytes int64
}

// Put stages one snapshot in the open epoch: tiles are the compressed
// tile archives in row-major chunk order, m carries the geometry with
// Tiles left nil (Put fills it). The snapshot is readable immediately;
// Seal makes it durable. The time step must be the field's next (or 0 for
// a new field) — the series is append-only.
func (s *Store) Put(m *Manifest, tiles [][]byte) (PutStats, error) {
	var st PutStats
	m.Tiles = make([]TileRef, len(tiles))
	for i, b := range tiles {
		if len(b) == 0 {
			return st, fmt.Errorf("cas: tile %d is empty", i)
		}
		m.Tiles[i] = TileRef{Score: ScoreOf(b), Size: int64(len(b))}
	}
	if err := m.validate(); err != nil {
		return st, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if want := s.nextTLocked(m.Field); m.T != want {
		return st, fmt.Errorf("cas: field %q is at time step %d next, not %d (snapshots are append-only)", m.Field, want, m.T)
	}
	for i, b := range tiles {
		tr := &m.Tiles[i]
		if _, ok := s.epochBlobs[tr.Score]; ok {
			st.DedupBlobs++
			st.DedupBytes += tr.Size
			continue
		}
		if n, ok := s.refs[tr.Score]; ok && n > 0 {
			st.DedupBlobs++
			st.DedupBytes += tr.Size
			continue
		}
		// Detach from the caller's buffer: epoch blobs outlive the request.
		s.epochBlobs[tr.Score] = append([]byte(nil), b...)
		st.NewBlobs++
		st.NewBytes += tr.Size
	}
	s.epochManifests = append(s.epochManifests, m)
	s.fields[m.Field] = append(s.fields[m.Field], m.T)
	return st, nil
}

// nextTLocked returns the next time step of a field across sealed and
// staged snapshots (0 for an unknown field).
func (s *Store) nextTLocked(field string) int {
	ts := s.fields[field]
	if len(ts) == 0 {
		return 0
	}
	return ts[len(ts)-1] + 1
}

// NextT returns the time step the next Put of the field must carry.
func (s *Store) NextT(field string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextTLocked(field)
}

// Seal flushes the open epoch to disk with an all-or-nothing commit and
// clears it. An empty epoch is a no-op. On error the epoch stays open
// (and fully readable); a process crash mid-seal is recovered by Open.
func (s *Store) Seal() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sealLocked()
}

func (s *Store) sealLocked() error {
	if len(s.epochManifests) == 0 {
		return nil
	}
	if err := s.sealEpoch(s.epochManifests, s.epochBlobs); err != nil {
		return err
	}
	for _, m := range s.epochManifests {
		s.indexManifest(m)
	}
	// indexManifest re-appended each staged T to fields; rebuild the lists
	// it touched from the manifest set to drop the duplicates Put added.
	for field := range s.fields {
		ts := s.fields[field][:0]
		for name := range s.manifests {
			if f, t, err := ParseSnapshotName(name); err == nil && f == field {
				ts = append(ts, t)
			}
		}
		sort.Ints(ts)
		s.fields[field] = ts
	}
	s.epochBlobs = make(map[Score][]byte)
	s.epochManifests = nil
	return nil
}

// step runs the chaos-test hook at a labeled instant of the commit
// protocol.
func (s *Store) step(label string) error {
	if s.testHookSeal != nil {
		return s.testHookSeal(label)
	}
	return nil
}

// sealEpoch is the commit protocol. Ordering is what makes a crash at any
// instant recoverable:
//
//  1. every new blob: tmp write, fsync, rename into blobs/ — idempotent,
//     content-addressed, invisible to readers until referenced
//  2. every manifest: tmp write, fsync, rename to .new — staged, untrusted
//  3. the journal listing the staged names: tmp write, fsync, rename —
//     THE commit point
//  4. every .new renamed to .ipcm
//  5. journal removed
//
// Crash before 3: recovery discards the .new files; blobs that landed are
// unreferenced garbage for GC. Crash after 3: recovery rolls the renames
// forward. Either way no sealed snapshot is ever half-visible.
func (s *Store) sealEpoch(manifests []*Manifest, blobs map[Score][]byte) error {
	for score, b := range blobs {
		if err := s.step("blob"); err != nil {
			return err
		}
		if err := s.writeBlobFile(score, b); err != nil {
			return err
		}
	}
	mdir := filepath.Join(s.dir, manifestsDir)
	names := make([]string, 0, len(manifests))
	for _, m := range manifests {
		if err := s.step("manifest"); err != nil {
			return err
		}
		raw, err := EncodeManifest(m)
		if err != nil {
			return err
		}
		if err := s.atomicWrite(filepath.Join(mdir, m.Name()+stagedExt), raw); err != nil {
			return err
		}
		names = append(names, m.Name())
	}
	if err := s.step("journal"); err != nil {
		return err
	}
	if err := s.atomicWrite(filepath.Join(mdir, journalName), []byte(strings.Join(names, "\n")+"\n")); err != nil {
		return err
	}
	for _, name := range names {
		if err := s.step("commit"); err != nil {
			return err
		}
		if err := os.Rename(filepath.Join(mdir, name+stagedExt), filepath.Join(mdir, name+manifestExt)); err != nil {
			return err
		}
	}
	if err := s.step("cleanup"); err != nil {
		return err
	}
	return os.Remove(filepath.Join(mdir, journalName))
}

// blobPath returns a blob's final path, creating its shard directory.
func (s *Store) blobPath(score Score, mkdir bool) (string, error) {
	hexName := score.String()
	shard := filepath.Join(s.dir, blobsDir, hexName[:2])
	if mkdir {
		if err := os.MkdirAll(shard, 0o755); err != nil {
			return "", err
		}
	}
	return filepath.Join(shard, hexName), nil
}

// writeBlobFile lands one blob via tmp write + rename; an already-present
// blob (same content by construction) is left untouched.
func (s *Store) writeBlobFile(score Score, b []byte) error {
	path, err := s.blobPath(score, true)
	if err != nil {
		return err
	}
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	return s.atomicWrite(path, b)
}

// atomicWrite writes bytes to path via a scratch file in tmp/, fsynced
// before the rename so the rename never publishes an empty or partial
// file.
func (s *Store) atomicWrite(path string, b []byte) error {
	f, err := os.CreateTemp(filepath.Join(s.dir, tmpDir), "w-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(b); err == nil {
		err = f.Sync()
	} else {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// SnapshotInfo summarizes one snapshot for listings.
type SnapshotInfo struct {
	Field  string
	T      int
	Name   string
	Shape  []int
	Chunk  []int
	Scalar uint8
	// Bytes is the snapshot's logical compressed size (every tile counted);
	// Tiles its tile count; Sealed whether it is durable yet.
	ErrorBound float64
	Tiles      int
	Bytes      int64
	Sealed     bool
}

// Snapshots lists every snapshot, sealed and staged, ordered by field
// then time step.
func (s *Store) Snapshots() []SnapshotInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SnapshotInfo, 0, len(s.manifests)+len(s.epochManifests))
	add := func(m *Manifest, sealed bool) {
		out = append(out, SnapshotInfo{
			Field: m.Field, T: m.T, Name: m.Name(),
			Shape: append([]int(nil), m.Shape...), Chunk: append([]int(nil), m.Chunk...),
			Scalar: m.Scalar, ErrorBound: m.ErrorBound,
			Tiles: len(m.Tiles), Bytes: m.Bytes(), Sealed: sealed,
		})
	}
	for _, m := range s.manifests {
		add(m, true)
	}
	for _, m := range s.epochManifests {
		add(m, false)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Field != out[j].Field {
			return out[i].Field < out[j].Field
		}
		return out[i].T < out[j].T
	})
	return out
}

// Manifest returns the named field's snapshot at time step t, sealed or
// staged.
func (s *Store) Manifest(field string, t int) (*Manifest, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.manifests[SnapshotName(field, t)]; ok {
		return m, true
	}
	for _, m := range s.epochManifests {
		if m.Field == field && m.T == t {
			return m, true
		}
	}
	return nil, false
}

// Latest returns a field's highest time step.
func (s *Store) Latest(field string) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts := s.fields[field]
	if len(ts) == 0 {
		return 0, false
	}
	return ts[len(ts)-1], true
}

// Fields lists the field names, sorted.
func (s *Store) Fields() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.fields))
	for f, ts := range s.fields {
		if len(ts) > 0 {
			out = append(out, f)
		}
	}
	sort.Strings(out)
	return out
}

// ReadBlob returns a blob's bytes: from the open epoch if staged there,
// otherwise from disk with its content verified against the score — a
// blob that does not hash to its key is an integrity error, never data.
func (s *Store) ReadBlob(score Score) ([]byte, error) {
	s.mu.Lock()
	if b, ok := s.epochBlobs[score]; ok {
		s.mu.Unlock()
		return b, nil
	}
	s.mu.Unlock()
	path, err := s.blobPath(score, false)
	if err != nil {
		return nil, err
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cas: blob %s: %w", score, err)
	}
	if ScoreOf(b) != score {
		return nil, fmt.Errorf("cas: blob %s fails its score check (%d bytes corrupt on disk)", score, len(b))
	}
	s.verified.Store(score, struct{}{})
	return b, nil
}

// ReadBlobAt fills p from the blob starting at off. The first touch of a
// sealed blob reads and verifies it whole (scores cover whole blobs, not
// ranges); later reads are served by ranged file I/O.
func (s *Store) ReadBlobAt(score Score, p []byte, off int64) (int, error) {
	s.mu.Lock()
	if b, ok := s.epochBlobs[score]; ok {
		s.mu.Unlock()
		return copyAt(p, b, off, score)
	}
	s.mu.Unlock()
	if _, ok := s.verified.Load(score); !ok {
		b, err := s.ReadBlob(score)
		if err != nil {
			return 0, err
		}
		return copyAt(p, b, off, score)
	}
	path, err := s.blobPath(score, false)
	if err != nil {
		return 0, err
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n, err := f.ReadAt(p, off)
	if err != nil {
		return n, fmt.Errorf("cas: blob %s: %w", score, err)
	}
	return n, nil
}

func copyAt(p, b []byte, off int64, score Score) (int, error) {
	if off < 0 || off > int64(len(b)) || int64(len(p)) > int64(len(b))-off {
		return 0, fmt.Errorf("cas: read [%d,%d) outside blob %s of %d bytes", off, off+int64(len(p)), score, len(b))
	}
	return copy(p, b[off:]), nil
}

// Delete removes a sealed snapshot's manifest, releasing its blob
// references (the blobs stay until GC). Staged snapshots cannot be
// deleted — seal first — and deleting from the middle of a series is
// allowed: remaining snapshots are untouched, the field's next time step
// stays one past its highest.
func (s *Store) Delete(field string, t int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	name := SnapshotName(field, t)
	m, ok := s.manifests[name]
	if !ok {
		for _, em := range s.epochManifests {
			if em.Field == field && em.T == t {
				return fmt.Errorf("cas: snapshot %s is staged in the open epoch; seal before deleting", name)
			}
		}
		return fmt.Errorf("cas: no snapshot %s", name)
	}
	if err := os.Remove(filepath.Join(s.dir, manifestsDir, name+manifestExt)); err != nil {
		return err
	}
	delete(s.manifests, name)
	ts := s.fields[field][:0]
	for _, have := range s.fields[field] {
		if have != t {
			ts = append(ts, have)
		}
	}
	s.fields[field] = ts
	for i := range m.Tiles {
		tr := &m.Tiles[i]
		s.refs[tr.Score]--
		if s.refs[tr.Score] == 0 {
			delete(s.refs, tr.Score)
			s.blobBytes -= s.sizes[tr.Score]
			delete(s.sizes, tr.Score)
		}
	}
	return nil
}

// GCStats reports what a sweep reclaimed.
type GCStats struct {
	Blobs int
	Bytes int64
}

// GC removes every on-disk blob no manifest references and that is not
// staged in the open epoch: garbage from deleted snapshots and from
// seals that crashed before their commit point.
func (s *Store) GC() (GCStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var st GCStats
	bdir := filepath.Join(s.dir, blobsDir)
	shards, err := os.ReadDir(bdir)
	if err != nil {
		return st, err
	}
	for _, shard := range shards {
		if !shard.IsDir() {
			continue
		}
		sdir := filepath.Join(bdir, shard.Name())
		entries, err := os.ReadDir(sdir)
		if err != nil {
			return st, err
		}
		for _, e := range entries {
			score, err := ParseScore(e.Name())
			if err != nil {
				continue // not a blob file; leave it alone
			}
			if s.refs[score] > 0 {
				continue
			}
			if _, staged := s.epochBlobs[score]; staged {
				continue
			}
			info, err := e.Info()
			if err != nil {
				return st, err
			}
			if err := os.Remove(filepath.Join(sdir, e.Name())); err != nil {
				return st, err
			}
			s.verified.Delete(score)
			st.Blobs++
			st.Bytes += info.Size()
		}
	}
	return st, nil
}

// Stats is a snapshot of the store's dedup accounting.
type Stats struct {
	// Snapshots and Fields count sealed manifests; Blobs/BlobBytes the
	// unique sealed blobs they reference. EpochSnapshots/EpochBlobs/
	// EpochBytes describe the open epoch.
	Snapshots      int
	Fields         int
	Blobs          int
	BlobBytes      int64
	EpochSnapshots int
	EpochBlobs     int
	EpochBytes     int64
}

// Stats reports the store's current accounting.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Snapshots:      len(s.manifests),
		Blobs:          len(s.refs),
		BlobBytes:      s.blobBytes,
		EpochSnapshots: len(s.epochManifests),
		EpochBlobs:     len(s.epochBlobs),
	}
	nf := 0
	for _, ts := range s.fields {
		if len(ts) > 0 {
			nf++
		}
	}
	st.Fields = nf
	for _, b := range s.epochBlobs {
		st.EpochBytes += int64(len(b))
	}
	return st
}
