// Package cas is the content-addressed tile store behind online ingest:
// venti's split applied to IPComp containers. Every compressed tile
// archive is an immutable blob keyed by the SHA-256 of its bytes (its
// "score"); a snapshot of one field at one time step is a manifest — an
// ordered list of scores plus the dataset geometry — so a time series of
// simulation snapshots stores each distinct tile exactly once, and a new
// snapshot costs only the blobs for its changed tiles. Integrity
// verification falls out of the addressing: a blob whose bytes do not
// hash to its key is detected on first read.
//
// Writes are fossil-shaped: puts land in an open epoch (blobs and
// manifests staged in memory, readable immediately), and Seal flushes the
// epoch to disk with an all-or-nothing commit — blobs first (each written
// to a temp file and renamed), then manifests staged as .new files, then
// a journal whose rename is the commit point, then the .new renames. A
// crash at any instant leaves either every snapshot of the epoch visible
// after recovery (journal present: roll forward) or none of them (no
// journal: the .new files are discarded). Sealed state is append-only;
// Delete removes a snapshot's manifest and GC sweeps blobs no manifest
// references.
//
// The package knows nothing about compression or containers: blobs are
// opaque bytes, geometry is integers. internal/store synthesizes a
// well-formed read-only container view over a manifest (see
// store.OpenSnapshot), which is what lets the whole existing read path —
// region retrieval, progressive planes, raw re-export — serve snapshots
// unchanged.
package cas
