// Package lossy defines the interface every error-bounded lossy compressor
// in this repository implements, so the residual-progressive wrappers and
// the experiment harness can treat IPComp and the four baselines uniformly.
package lossy

import "repro/internal/grid"

// Codec is a one-shot error-bounded lossy compressor.
type Codec interface {
	// Name identifies the codec in experiment output ("SZ3", "ZFP", ...).
	Name() string
	// Compress encodes g such that decompression reconstructs every value
	// within the absolute error bound eb.
	Compress(g *grid.Grid[float64], eb float64) ([]byte, error)
	// Decompress reconstructs a grid of the given shape from blob.
	Decompress(blob []byte, shape grid.Shape) (*grid.Grid[float64], error)
}
