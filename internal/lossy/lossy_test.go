// Package lossy_test cross-validates every lossy.Codec implementation
// against the same contract: round-trip within the error bound on smooth
// multi-scale fields, across shapes and bounds.
package lossy_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/grid"
	"repro/internal/lossy"
	"repro/internal/mgard"
	"repro/internal/sperr"
	"repro/internal/sz3"
	"repro/internal/zfp"
)

func codecs() []lossy.Codec {
	return []lossy.Codec{sz3.New(), zfp.New(), mgard.New(), sperr.New()}
}

func smoothField(shape grid.Shape, seed int64) *grid.Grid[float64] {
	g := grid.MustNew[float64](shape)
	r := rand.New(rand.NewSource(seed))
	n1 := r.Float64()*4 + 1
	n2 := r.Float64()*9 + 3
	data := g.Data()
	strides := shape.Strides()
	for i := range data {
		v := 0.0
		rem := i
		for d := 0; d < len(shape); d++ {
			c := float64(rem/strides[d]) / float64(shape[d])
			rem %= strides[d]
			v += math.Sin(n1*math.Pi*c) + 0.3*math.Cos(n2*math.Pi*c+1)
		}
		data[i] = v
	}
	return g
}

func maxErr(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func TestAllCodecsRespectBound(t *testing.T) {
	shapes := []grid.Shape{{200}, {40, 37}, {20, 22, 24}}
	bounds := []float64{1e-2, 1e-4, 1e-7}
	for _, c := range codecs() {
		for _, shape := range shapes {
			for _, eb := range bounds {
				g := smoothField(shape, 11)
				blob, err := c.Compress(g, eb)
				if err != nil {
					t.Fatalf("%s %v eb=%g: compress: %v", c.Name(), shape, eb, err)
				}
				rec, err := c.Decompress(blob, shape)
				if err != nil {
					t.Fatalf("%s %v eb=%g: decompress: %v", c.Name(), shape, eb, err)
				}
				if got := maxErr(g.Data(), rec.Data()); got > eb {
					t.Errorf("%s %v eb=%g: max error %g", c.Name(), shape, eb, got)
				}
			}
		}
	}
}

func TestAllCodecsCompressSmoothData(t *testing.T) {
	shape := grid.Shape{32, 32, 32}
	g := smoothField(shape, 5)
	raw := g.Len() * 8
	for _, c := range codecs() {
		blob, err := c.Compress(g, 1e-4)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if len(blob) > raw/2 {
			t.Errorf("%s: %d bytes for %d raw (CR %.1f) — not compressing",
				c.Name(), len(blob), raw, float64(raw)/float64(len(blob)))
		}
	}
}

func TestAllCodecsRejectBadBound(t *testing.T) {
	g := smoothField(grid.Shape{8, 8}, 1)
	for _, c := range codecs() {
		if _, err := c.Compress(g, 0); err == nil {
			t.Errorf("%s accepted eb=0", c.Name())
		}
		if _, err := c.Compress(g, math.Inf(1)); err == nil {
			t.Errorf("%s accepted eb=inf", c.Name())
		}
	}
}

func TestAllCodecsRejectGarbage(t *testing.T) {
	for _, c := range codecs() {
		if _, err := c.Decompress([]byte{1, 2, 3}, grid.Shape{4}); err == nil {
			t.Errorf("%s decompressed garbage", c.Name())
		}
	}
}

func TestCodecNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range codecs() {
		if seen[c.Name()] {
			t.Errorf("duplicate codec name %q", c.Name())
		}
		seen[c.Name()] = true
	}
}
