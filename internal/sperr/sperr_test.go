package sperr

import (
	"math"
	"testing"

	"repro/internal/grid"
)

func field(shape grid.Shape) *grid.Grid[float64] {
	g := grid.MustNew[float64](shape)
	data := g.Data()
	strides := shape.Strides()
	for i := range data {
		v := 0.0
		rem := i
		for d := 0; d < len(shape); d++ {
			c := float64(rem/strides[d]) / float64(shape[d])
			rem %= strides[d]
			v += math.Sin(6*c) + 0.3*math.Cos(15*c)
		}
		data[i] = v
	}
	return g
}

func TestRoundTripBounds(t *testing.T) {
	c := New()
	for _, shape := range []grid.Shape{{128}, {33, 31}, {18, 20, 22}} {
		for _, eb := range []float64{1e-2, 1e-5, 1e-8} {
			g := field(shape)
			blob, err := c.Compress(g, eb)
			if err != nil {
				t.Fatal(err)
			}
			rec, err := c.Decompress(blob, shape)
			if err != nil {
				t.Fatal(err)
			}
			for i := range g.Data() {
				if math.Abs(g.Data()[i]-rec.Data()[i]) > eb {
					t.Fatalf("%v eb=%g: error %g at %d", shape, eb,
						math.Abs(g.Data()[i]-rec.Data()[i]), i)
				}
			}
		}
	}
}

// TestOutlierCorrectionKicksIn: a field with a sharp discontinuity defeats
// the wavelet pass locally; the correction stage must still bound every
// point.
func TestOutlierCorrectionKicksIn(t *testing.T) {
	c := New()
	shape := grid.Shape{32, 32}
	g := field(shape)
	// Step discontinuity.
	for i := 0; i < 32; i++ {
		for j := 16; j < 32; j++ {
			g.Set(g.At(i, j)+5, i, j)
		}
	}
	eb := 1e-6
	blob, err := c.Compress(g, eb)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := c.Decompress(blob, shape)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Data() {
		if math.Abs(g.Data()[i]-rec.Data()[i]) > eb {
			t.Fatalf("error %g at %d", math.Abs(g.Data()[i]-rec.Data()[i]), i)
		}
	}
}

func TestHugeValuesEscapeCoefficientQuantizer(t *testing.T) {
	c := New()
	shape := grid.Shape{16, 16}
	g := grid.MustNew[float64](shape)
	for i := range g.Data() {
		g.Data()[i] = 1e15 // large constant: coefficients overflow the index window
	}
	eb := 1e-9
	blob, err := c.Compress(g, eb)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := c.Decompress(blob, shape)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Data() {
		if math.Abs(g.Data()[i]-rec.Data()[i]) > eb {
			t.Fatalf("error at %d: %g", i, math.Abs(g.Data()[i]-rec.Data()[i]))
		}
	}
}

func TestRejectsGarbageAndBadBound(t *testing.T) {
	c := New()
	if _, err := c.Decompress([]byte{1}, grid.Shape{4}); err == nil {
		t.Error("garbage must fail")
	}
	g := field(grid.Shape{8, 8})
	if _, err := c.Compress(g, -1); err == nil {
		t.Error("negative bound must fail")
	}
}

func TestSmoothDataHasFewOutliers(t *testing.T) {
	// On a genuinely smooth field the wavelet pass should bound nearly all
	// points itself; the archive must stay well below raw size.
	c := New()
	g := field(grid.Shape{32, 32, 32})
	blob, err := c.Compress(g, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) > g.Len()*8/2 {
		t.Errorf("sperr blob %d bytes vs raw %d — outlier storm?", len(blob), g.Len()*8)
	}
}
