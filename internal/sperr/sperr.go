// Package sperr implements SPERR-lite, a wavelet-based error-bounded
// compressor modeled on SPERR (Li et al., IPDPS 2023), which the paper
// includes in its speed comparison as the residual-progressive SPERR-R
// (§6.2.3, Fig 9).
//
// The pipeline mirrors SPERR's structure: a multi-level CDF 9/7 wavelet
// transform, uniform quantization of the coefficients, entropy coding, and
// — the step that makes the L∞ bound exact — an outlier correction pass
// that encodes every point whose reconstruction error still exceeds the
// bound. (SPERR-lite replaces SPECK set partitioning with Huffman+DEFLATE;
// see DESIGN.md.)
package sperr

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/codec"
	"repro/internal/grid"
	"repro/internal/quant"
	"repro/internal/wavelet"
)

const magic = 0x525053 // "SPR"

// Codec implements lossy.Codec.
type Codec struct{}

// New returns a SPERR-lite codec.
func New() *Codec { return &Codec{} }

// Name implements lossy.Codec.
func (c *Codec) Name() string { return "SPERR" }

// coefficient quantization uses a step finer than the target bound so that
// outliers (points the wavelet pass alone cannot bound) stay rare.
const stepDivisor = 4

// Compress implements lossy.Codec.
func (c *Codec) Compress(g *grid.Grid[float64], eb float64) ([]byte, error) {
	if !(eb > 0) || math.IsInf(eb, 0) {
		return nil, fmt.Errorf("sperr: error bound must be positive and finite, got %v", eb)
	}
	shape := g.Shape()
	levels := wavelet.MaxLevels(shape)

	// Forward transform on a copy.
	coef := g.Clone()
	wavelet.Transform(coef, levels)

	// Quantize coefficients.
	q := quant.New(eb / stepDivisor)
	cd := coef.Data()
	ks := make([]int32, len(cd))
	var wOutIdx []uint32 // coefficient-domain outliers (huge coefficients)
	var wOutVal []float64
	for i, v := range cd {
		k, ok := q.Quantize(v)
		if !ok {
			wOutIdx = append(wOutIdx, uint32(i))
			wOutVal = append(wOutVal, v)
			k = 0
		}
		ks[i] = k
	}

	// Reconstruct to find value-domain outliers that still violate eb.
	rec, err := reconstruct(ks, wOutIdx, wOutVal, shape, levels, q)
	if err != nil {
		return nil, err
	}
	gd := g.Data()
	rd := rec.Data()
	var oIdx []uint32
	var oVal []float64
	for i := range gd {
		d := gd[i] - rd[i]
		if math.IsNaN(d) || math.Abs(d) > eb {
			oIdx = append(oIdx, uint32(i))
			oVal = append(oVal, gd[i])
		}
	}

	huff := codec.HuffmanEncode(ks)
	payload := codec.EncodeBlock(huff)

	var buf bytes.Buffer
	w := func(v interface{}) { binary.Write(&buf, binary.LittleEndian, v) }
	w(uint32(magic))
	w(eb)
	w(uint8(levels))
	w(uint32(len(wOutIdx)))
	for i := range wOutIdx {
		w(wOutIdx[i])
		w(wOutVal[i])
	}
	w(uint32(len(oIdx)))
	for i := range oIdx {
		w(oIdx[i])
		w(oVal[i])
	}
	w(uint32(len(huff)))
	w(uint32(len(payload)))
	buf.Write(payload)
	return buf.Bytes(), nil
}

// Decompress implements lossy.Codec.
func (c *Codec) Decompress(blob []byte, shape grid.Shape) (*grid.Grid[float64], error) {
	r := bytes.NewReader(blob)
	rd := func(v interface{}) error { return binary.Read(r, binary.LittleEndian, v) }
	var m uint32
	if err := rd(&m); err != nil || m != magic {
		return nil, fmt.Errorf("sperr: bad magic")
	}
	var eb float64
	if err := rd(&eb); err != nil {
		return nil, err
	}
	var levels uint8
	if err := rd(&levels); err != nil {
		return nil, err
	}
	var nw uint32
	if err := rd(&nw); err != nil {
		return nil, err
	}
	wOutIdx := make([]uint32, nw)
	wOutVal := make([]float64, nw)
	for i := range wOutIdx {
		if err := rd(&wOutIdx[i]); err != nil {
			return nil, err
		}
		if err := rd(&wOutVal[i]); err != nil {
			return nil, err
		}
	}
	var no uint32
	if err := rd(&no); err != nil {
		return nil, err
	}
	oIdx := make([]uint32, no)
	oVal := make([]float64, no)
	for i := range oIdx {
		if err := rd(&oIdx[i]); err != nil {
			return nil, err
		}
		if err := rd(&oVal[i]); err != nil {
			return nil, err
		}
	}
	var huffLen, payLen uint32
	if err := rd(&huffLen); err != nil {
		return nil, err
	}
	if err := rd(&payLen); err != nil {
		return nil, err
	}
	payload := make([]byte, payLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	huff, err := codec.DecodeBlock(payload, int(huffLen))
	if err != nil {
		return nil, err
	}
	ks, err := codec.HuffmanDecode(huff)
	if err != nil {
		return nil, err
	}
	if len(ks) != shape.Len() {
		return nil, fmt.Errorf("sperr: %d coefficients for %d points", len(ks), shape.Len())
	}
	q := quant.New(eb / stepDivisor)
	g, err := reconstruct(ks, wOutIdx, wOutVal, shape, int(levels), q)
	if err != nil {
		return nil, err
	}
	gd := g.Data()
	for i := range oIdx {
		gd[oIdx[i]] = oVal[i]
	}
	return g, nil
}

// reconstruct dequantizes coefficients and applies the inverse transform.
func reconstruct(ks []int32, wOutIdx []uint32, wOutVal []float64, shape grid.Shape, levels int, q quant.Quantizer) (*grid.Grid[float64], error) {
	g, err := grid.New[float64](shape)
	if err != nil {
		return nil, err
	}
	gd := g.Data()
	if len(ks) != len(gd) {
		return nil, fmt.Errorf("sperr: coefficient count mismatch")
	}
	for i, k := range ks {
		gd[i] = q.Dequantize(k)
	}
	for i := range wOutIdx {
		gd[wOutIdx[i]] = wOutVal[i]
	}
	wavelet.Inverse(g, levels)
	return g, nil
}
