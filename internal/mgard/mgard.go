// Package mgard implements MGARD-lite, a multigrid-style hierarchical
// compressor, and PMGARD, its progressive retrieval variant — the paper's
// multilevel-decomposition baseline (§6.1.3).
//
// MGARD decomposes the field into multilevel coefficients: the difference
// between each grid point and its multilinear interpolation from the next
// coarser grid, computed on the ORIGINAL data (a transform model, in the
// paper's §4.2 terminology, in contrast to IPComp's prediction model). Each
// level's coefficients are quantized with a level-scaled bound so the
// accumulated reconstruction error stays within the user bound. This "lite"
// version omits the Galerkin L2-projection correction of full MGARD (see
// DESIGN.md); it retains the properties the comparison relies on: a
// hierarchical transform with per-level coefficient streams, moderate
// ratios, and progressive bitplane retrieval.
package mgard

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/bitplane"
	"repro/internal/codec"
	"repro/internal/grid"
	"repro/internal/interp"
	"repro/internal/nb"
	"repro/internal/quant"
)

const magic = 0x44474D // "MGD"

// Codec is the non-progressive MGARD-lite compressor (lossy.Codec).
type Codec struct{}

// New returns an MGARD-lite codec.
func New() *Codec { return &Codec{} }

// Name implements lossy.Codec.
func (c *Codec) Name() string { return "MGARD" }

// levelBounds splits the global bound across levels: level l's quantization
// error is amplified by weight(l) on the way to the finest grid, so each
// level gets eb/(L·weight(l)).
func levelBounds(eb float64, levels, ndims int) []float64 {
	// MGARD-lite interpolates multilinearly (amplification factor 1 per
	// pass), but each level runs one pass per dimension and every pass can
	// pick up a fresh quantization error, so a level's error reaches the
	// finest grid multiplied by at most ndims.
	w := float64(ndims)
	out := make([]float64, levels+1)
	for l := 1; l <= levels; l++ {
		out[l] = eb / (float64(levels) * w)
	}
	return out
}

// Compress implements lossy.Codec.
func (c *Codec) Compress(g *grid.Grid[float64], eb float64) ([]byte, error) {
	a, err := CompressProgressive(g, eb)
	if err != nil {
		return nil, err
	}
	return a.Marshal(), nil
}

// Decompress implements lossy.Codec.
func (c *Codec) Decompress(blob []byte, shape grid.Shape) (*grid.Grid[float64], error) {
	a, err := Unmarshal(blob)
	if err != nil {
		return nil, err
	}
	if !a.Shape.Equal(shape) {
		return nil, fmt.Errorf("mgard: archive shape %v, requested %v", a.Shape, shape)
	}
	res, err := a.RetrieveErrorBound(a.EB)
	if err != nil {
		return nil, err
	}
	return res.Data, nil
}

// Archive is a PMGARD progressive archive: per-level bitplane-coded
// multilevel coefficients.
type Archive struct {
	Shape   grid.Shape
	EB      float64
	Levels  int
	Anchors []float64
	// Per level (index 0 = level 1, finest):
	Counts     []int
	UsedPlanes []int
	MaxDrop    [][]uint32 // exact truncation loss per dropped-plane count
	Blocks     [][][]byte // [level][plane] encoded blocks
	OutIdx     [][]uint32
	OutVal     [][]float64
	levelEB    []float64
}

// CompressProgressive builds the PMGARD archive.
func CompressProgressive(g *grid.Grid[float64], eb float64) (*Archive, error) {
	if !(eb > 0) || math.IsInf(eb, 0) {
		return nil, fmt.Errorf("mgard: error bound must be positive and finite, got %v", eb)
	}
	dec, err := interp.NewDecomposition(g.Shape())
	if err != nil {
		return nil, err
	}
	L := dec.NumLevels()
	a := &Archive{
		Shape:      g.Shape().Clone(),
		EB:         eb,
		Levels:     L,
		Counts:     make([]int, L),
		UsedPlanes: make([]int, L),
		MaxDrop:    make([][]uint32, L),
		Blocks:     make([][][]byte, L),
		OutIdx:     make([][]uint32, L),
		OutVal:     make([][]float64, L),
		levelEB:    levelBounds(eb, L, len(g.Shape())),
	}

	// Transform model: coefficients are computed against the ORIGINAL
	// values of coarser points (no in-loop reconstruction).
	orig := g.Data()
	work := make([]float64, len(orig))
	copy(work, orig)
	anchorIdx := dec.Anchors()
	a.Anchors = make([]float64, len(anchorIdx))
	for i, idx := range anchorIdx {
		a.Anchors[i] = orig[idx]
	}
	for l := L; l >= 1; l-- {
		q := quant.New(a.levelEB[l])
		var ks []int32
		seq := uint32(0)
		li := l - 1
		dec.VisitLevel(work, l, interp.Linear, func(idx int, pred float64) float64 {
			k, ok := q.Quantize(orig[idx] - pred)
			if !ok {
				a.OutIdx[li] = append(a.OutIdx[li], seq)
				a.OutVal[li] = append(a.OutVal[li], orig[idx])
				k = 0
			}
			ks = append(ks, k)
			seq++
			// Keep the ORIGINAL value in the work array: later levels'
			// coefficients reference original coarser values. That is what
			// makes this a transform rather than a prediction model.
			return orig[idx]
		})
		a.Counts[li] = len(ks)

		nbv := make([]uint32, len(ks))
		for i, k := range ks {
			nbv[i] = nb.Encode32(k)
		}
		used := bitplane.NumUsedPlanes(nbv)
		a.UsedPlanes[li] = used
		a.MaxDrop[li] = exactMaxDrop(ks, nbv, used)
		planes := bitplane.Split(nbv)[32-used:]
		bitplane.PredictEncode(planes)
		a.Blocks[li] = make([][]byte, used)
		for p := 0; p < used; p++ {
			a.Blocks[li][p] = codec.EncodeBlock(planes[p])
		}
	}
	return a, nil
}

func exactMaxDrop(ks []int32, nbv []uint32, used int) []uint32 {
	maxDrop := make([]uint32, used+1)
	for i, u := range nbv {
		k := int64(ks[i])
		for d := 1; d <= used; d++ {
			t := int64(nb.Decode32(nb.Truncate(u, d)))
			diff := k - t
			if diff < 0 {
				diff = -diff
			}
			if uint32(diff) > maxDrop[d] {
				maxDrop[d] = uint32(diff)
			}
		}
	}
	return maxDrop
}

// TotalSize returns the archive size when serialized.
func (a *Archive) TotalSize() int64 { return int64(len(a.Marshal())) }

// Retrieval is a PMGARD progressive reconstruction.
type Retrieval struct {
	Data        *grid.Grid[float64]
	LoadedBytes int64
	Bound       float64
}

// RetrieveErrorBound reconstructs within the requested L∞ bound, loading
// per level only the bitplanes PMGARD's per-level error estimator needs.
// The budget above the base eb is split evenly across levels (PMGARD's
// estimator-driven greedy allocation; coarser-grained than IPComp's global
// knapsack, which is one reason IPComp loads less — see paper §6.2.2).
func (a *Archive) RetrieveErrorBound(e float64) (*Retrieval, error) {
	if e < a.EB {
		return nil, fmt.Errorf("mgard: bound %g tighter than archive bound %g", e, a.EB)
	}
	dec, err := interp.NewDecomposition(a.Shape)
	if err != nil {
		return nil, err
	}
	g, err := grid.New[float64](a.Shape)
	if err != nil {
		return nil, err
	}
	data := g.Data()
	for i, idx := range dec.Anchors() {
		data[idx] = a.Anchors[i]
	}

	// Per-level share of the extra budget. The quantization error of level
	// l propagates with weight ndims (linear interpolation, one pass per
	// dimension), matching levelBounds.
	extra := e - a.EB
	nd := float64(len(a.Shape))
	ret := &Retrieval{Data: g}
	var loaded int64
	bound := a.EB
	for l := a.Levels; l >= 1; l-- {
		li := l - 1
		q := quant.New(a.levelEBAt(l))
		share := extra / (float64(a.Levels) * nd)
		// Keep the fewest planes with truncation loss within the share.
		used := a.UsedPlanes[li]
		keep := used
		for d := used; d >= 0; d-- {
			if float64(a.MaxDrop[li][d])*q.Step() <= share {
				keep = used - d
				break
			}
		}
		full := make([][]byte, bitplane.Planes)
		sub := make([][]byte, used)
		planeBytes := (a.Counts[li] + 7) / 8
		for p := 0; p < keep; p++ {
			plane, err := codec.DecodeBlock(a.Blocks[li][p], planeBytes)
			if err != nil {
				return nil, err
			}
			sub[p] = plane
			loaded += int64(len(a.Blocks[li][p]))
		}
		bitplane.PredictDecode(sub)
		for p := 0; p < keep; p++ {
			full[bitplane.Planes-used+p] = sub[p]
		}
		nbv := make([]uint32, a.Counts[li])
		bitplane.MergeInto(nbv, full)
		bound += float64(a.MaxDrop[li][used-keep]) * q.Step() * nd

		seq := 0
		oi := 0
		dec.VisitLevel(data, l, interp.Linear, func(_ int, pred float64) float64 {
			v := pred + q.Dequantize(nb.Decode32(nbv[seq]))
			if oi < len(a.OutIdx[li]) && a.OutIdx[li][oi] == uint32(seq) {
				v = a.OutVal[li][oi]
				oi++
			}
			seq++
			return v
		})
	}
	ret.LoadedBytes = loaded + a.headerSize()
	ret.Bound = bound
	return ret, nil
}

func (a *Archive) levelEBAt(l int) float64 {
	if a.levelEB == nil {
		a.levelEB = levelBounds(a.EB, a.Levels, len(a.Shape))
	}
	return a.levelEB[l]
}

func (a *Archive) headerSize() int64 {
	size := int64(4 + 1 + 8 + 1 + 4 + len(a.Anchors)*8)
	for li := 0; li < a.Levels; li++ {
		size += int64(4 + 1 + 4*(a.UsedPlanes[li]+1) + 4*len(a.Blocks[li]) +
			4 + len(a.OutIdx[li])*12)
	}
	return size
}

// Marshal serializes the archive.
func (a *Archive) Marshal() []byte {
	var buf bytes.Buffer
	w := func(v interface{}) { binary.Write(&buf, binary.LittleEndian, v) }
	w(uint32(magic))
	w(uint8(len(a.Shape)))
	for _, d := range a.Shape {
		w(uint32(d))
	}
	w(a.EB)
	w(uint8(a.Levels))
	w(uint32(len(a.Anchors)))
	for _, v := range a.Anchors {
		w(v)
	}
	for li := 0; li < a.Levels; li++ {
		w(uint32(a.Counts[li]))
		w(uint8(a.UsedPlanes[li]))
		for _, d := range a.MaxDrop[li] {
			w(d)
		}
		for _, b := range a.Blocks[li] {
			w(uint32(len(b)))
		}
		w(uint32(len(a.OutIdx[li])))
		for i := range a.OutIdx[li] {
			w(a.OutIdx[li][i])
			w(a.OutVal[li][i])
		}
	}
	for li := 0; li < a.Levels; li++ {
		for _, b := range a.Blocks[li] {
			buf.Write(b)
		}
	}
	return buf.Bytes()
}

// Unmarshal parses a serialized archive.
func Unmarshal(blob []byte) (*Archive, error) {
	r := bytes.NewReader(blob)
	rd := func(v interface{}) error { return binary.Read(r, binary.LittleEndian, v) }
	var m uint32
	if err := rd(&m); err != nil || m != magic {
		return nil, fmt.Errorf("mgard: bad magic")
	}
	var nd uint8
	if err := rd(&nd); err != nil {
		return nil, err
	}
	if nd == 0 || int(nd) > grid.MaxDims {
		return nil, fmt.Errorf("mgard: bad rank %d", nd)
	}
	a := &Archive{Shape: make(grid.Shape, nd)}
	for i := range a.Shape {
		var d uint32
		if err := rd(&d); err != nil {
			return nil, err
		}
		a.Shape[i] = int(d)
	}
	if err := rd(&a.EB); err != nil {
		return nil, err
	}
	var lv uint8
	if err := rd(&lv); err != nil {
		return nil, err
	}
	a.Levels = int(lv)
	var nAnchor uint32
	if err := rd(&nAnchor); err != nil {
		return nil, err
	}
	a.Anchors = make([]float64, nAnchor)
	for i := range a.Anchors {
		if err := rd(&a.Anchors[i]); err != nil {
			return nil, err
		}
	}
	a.Counts = make([]int, a.Levels)
	a.UsedPlanes = make([]int, a.Levels)
	a.MaxDrop = make([][]uint32, a.Levels)
	a.Blocks = make([][][]byte, a.Levels)
	a.OutIdx = make([][]uint32, a.Levels)
	a.OutVal = make([][]float64, a.Levels)
	blockSizes := make([][]uint32, a.Levels)
	for li := 0; li < a.Levels; li++ {
		var cnt uint32
		if err := rd(&cnt); err != nil {
			return nil, err
		}
		a.Counts[li] = int(cnt)
		var up uint8
		if err := rd(&up); err != nil {
			return nil, err
		}
		a.UsedPlanes[li] = int(up)
		a.MaxDrop[li] = make([]uint32, a.UsedPlanes[li]+1)
		for d := range a.MaxDrop[li] {
			if err := rd(&a.MaxDrop[li][d]); err != nil {
				return nil, err
			}
		}
		blockSizes[li] = make([]uint32, a.UsedPlanes[li])
		for p := range blockSizes[li] {
			if err := rd(&blockSizes[li][p]); err != nil {
				return nil, err
			}
		}
		var nOut uint32
		if err := rd(&nOut); err != nil {
			return nil, err
		}
		a.OutIdx[li] = make([]uint32, nOut)
		a.OutVal[li] = make([]float64, nOut)
		for i := range a.OutIdx[li] {
			if err := rd(&a.OutIdx[li][i]); err != nil {
				return nil, err
			}
			if err := rd(&a.OutVal[li][i]); err != nil {
				return nil, err
			}
		}
	}
	for li := 0; li < a.Levels; li++ {
		a.Blocks[li] = make([][]byte, a.UsedPlanes[li])
		for p := range a.Blocks[li] {
			b := make([]byte, blockSizes[li][p])
			if _, err := io.ReadFull(r, b); err != nil {
				return nil, err
			}
			a.Blocks[li][p] = b
		}
	}
	return a, nil
}
