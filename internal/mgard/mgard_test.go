package mgard

import (
	"math"
	"testing"

	"repro/internal/grid"
)

func field(shape grid.Shape) *grid.Grid[float64] {
	g := grid.MustNew[float64](shape)
	data := g.Data()
	strides := shape.Strides()
	for i := range data {
		v := 0.0
		rem := i
		for d := 0; d < len(shape); d++ {
			c := float64(rem/strides[d]) / float64(shape[d])
			rem %= strides[d]
			v += math.Cos(3*math.Pi*c) + 0.2*math.Sin(11*c+1)
		}
		data[i] = v
	}
	return g
}

func maxErr(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func TestCodecRoundTrip(t *testing.T) {
	c := New()
	for _, shape := range []grid.Shape{{100}, {24, 26}, {14, 15, 16}} {
		for _, eb := range []float64{1e-3, 1e-6} {
			g := field(shape)
			blob, err := c.Compress(g, eb)
			if err != nil {
				t.Fatal(err)
			}
			rec, err := c.Decompress(blob, shape)
			if err != nil {
				t.Fatal(err)
			}
			if got := maxErr(g.Data(), rec.Data()); got > eb {
				t.Errorf("%v eb=%g: error %g", shape, eb, got)
			}
		}
	}
}

// TestProgressiveRetrievalBounds is PMGARD's core property: retrieval at
// any bound above the archive bound stays within it while loading less.
func TestProgressiveRetrievalBounds(t *testing.T) {
	g := field(grid.Shape{32, 30, 20})
	eb := 1e-7
	a, err := CompressProgressive(g, eb)
	if err != nil {
		t.Fatal(err)
	}
	prevLoaded := int64(1 << 62)
	for _, factor := range []float64{1, 16, 1024, 65536} {
		bound := eb * factor
		ret, err := a.RetrieveErrorBound(bound)
		if err != nil {
			t.Fatalf("factor %v: %v", factor, err)
		}
		if got := maxErr(g.Data(), ret.Data.Data()); got > bound {
			t.Errorf("factor %v: error %g over bound", factor, got)
		}
		if ret.Bound > bound {
			t.Errorf("factor %v: estimated bound %g over requested %g", factor, ret.Bound, bound)
		}
		if ret.LoadedBytes > prevLoaded {
			t.Errorf("factor %v: loaded %d, more than tighter bound %d",
				factor, ret.LoadedBytes, prevLoaded)
		}
		prevLoaded = ret.LoadedBytes
	}
	// The loosest retrieval must be genuinely cheaper.
	tight, _ := a.RetrieveErrorBound(eb)
	loose, _ := a.RetrieveErrorBound(eb * 65536)
	if loose.LoadedBytes >= tight.LoadedBytes {
		t.Errorf("loose load %d >= tight %d", loose.LoadedBytes, tight.LoadedBytes)
	}
}

func TestRetrievalRejectsTighterBound(t *testing.T) {
	g := field(grid.Shape{16, 16})
	a, err := CompressProgressive(g, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.RetrieveErrorBound(1e-5); err == nil {
		t.Error("tighter-than-archive bound must error")
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	g := field(grid.Shape{20, 18})
	eb := 1e-5
	a, err := CompressProgressive(g, eb)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Unmarshal(a.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	ret, err := b.RetrieveErrorBound(eb)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxErr(g.Data(), ret.Data.Data()); got > eb {
		t.Errorf("round-tripped archive error %g", got)
	}
	if _, err := Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Error("garbage must fail")
	}
}

func TestOutlierPath(t *testing.T) {
	g := field(grid.Shape{24, 24})
	g.Data()[50] = 1e16
	eb := 1e-9
	a, err := CompressProgressive(g, eb)
	if err != nil {
		t.Fatal(err)
	}
	ret, err := a.RetrieveErrorBound(eb)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxErr(g.Data(), ret.Data.Data()); got > eb {
		t.Errorf("outlier dataset error %g", got)
	}
}

func TestRejectsBadBound(t *testing.T) {
	g := field(grid.Shape{8, 8})
	if _, err := CompressProgressive(g, 0); err == nil {
		t.Error("zero bound must error")
	}
	if _, err := CompressProgressive(g, math.Inf(1)); err == nil {
		t.Error("inf bound must error")
	}
}
