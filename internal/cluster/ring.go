package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring mapping container names to an ordered
// list of owning nodes. Each node projects VirtualNodes points onto the
// ring; a container's replicas are the first Replication distinct nodes
// clockwise from the container's own hash point. The order is
// deterministic for a given membership, so every node that builds a Ring
// from the same peer list computes identical replica sets — no
// coordination protocol, no metadata service.
//
// Membership is immutable after New: failover around a dead peer is the
// router's job (see internal/server), which keeps placement stable across
// node restarts. A Ring is safe for concurrent use.
type Ring struct {
	replication int
	points      []point  // sorted by hash
	nodes       []string // sorted, for introspection
}

// point is one virtual node's position on the ring.
type point struct {
	hash uint64
	node string
}

// DefaultVirtualNodes balances placement smoothness against ring size;
// at 64 points per node the max/min container spread across nodes stays
// within a few tens of percent, plenty for whole-container placement.
const DefaultVirtualNodes = 64

// New builds a ring over the given node names. replication is clamped to
// the node count; vnodes <= 0 selects DefaultVirtualNodes. Node names
// must be non-empty and unique.
func New(nodes []string, replication, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if replication < 1 {
		return nil, fmt.Errorf("cluster: replication %d < 1", replication)
	}
	if replication > len(nodes) {
		replication = len(nodes)
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{
		replication: replication,
		points:      make([]point, 0, len(nodes)*vnodes),
		nodes:       make([]string, 0, len(nodes)),
	}
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node name")
		}
		if seen[n] {
			return nil, fmt.Errorf("cluster: duplicate node %q", n)
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hashPoint(n, v), node: n})
		}
	}
	sort.Strings(r.nodes)
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A full-64-bit collision between virtual nodes is vanishingly
		// rare, but the tiebreak must still be deterministic across nodes.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// mix64 is the splitmix64 finalizer. FNV alone clusters badly over the
// short, similar strings a ring hashes ("n1#0", "n1#1", …): its points
// land correlated and the spread test fails by 5×. The finalizer
// decorrelates them without changing determinism.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashPoint hashes one virtual node. The vnode index is mixed in as a
// suffix so a node's points are unrelated to each other.
func hashPoint(node string, vnode int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(node))
	fmt.Fprintf(h, "#%d", vnode)
	return mix64(h.Sum64())
}

// hashKey hashes a container name onto the ring. It uses a different
// suffix domain than hashPoint so a container named like a virtual node
// cannot land exactly on it.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{0})
	return mix64(h.Sum64())
}

// Replicas returns the nodes owning the named container, primary first,
// in deterministic failover order. The returned slice is freshly
// allocated; callers may reorder it.
func (r *Ring) Replicas(container string) []string {
	want := r.replication
	out := make([]string, 0, want)
	seen := make(map[string]bool, want)
	start := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].hash >= hashKey(container)
	})
	for i := 0; i < len(r.points) && len(out) < want; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// Owns reports whether node is one of the container's replicas.
func (r *Ring) Owns(node, container string) bool {
	for _, n := range r.Replicas(container) {
		if n == node {
			return true
		}
	}
	return false
}

// Primary returns the container's first replica.
func (r *Ring) Primary(container string) string { return r.Replicas(container)[0] }

// Nodes returns the ring's membership in sorted order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Replication returns the effective replication factor (clamped to the
// node count at construction).
func (r *Ring) Replication() int { return r.replication }
