package cluster

import (
	"sync"
	"time"
)

// Health tracks per-peer failure state for the router: a peer that fails
// Threshold consecutive times is ejected from routing for Cooldown, after
// which a single probe request is let through (half-open). A probe
// success fully restores the peer; a probe failure re-ejects it for
// another Cooldown. Success at any point resets the failure count.
//
// Ejection is advisory: the router consults Allow to *order and prune*
// candidates, but when every replica of a container is ejected it must
// still try them — a wrong "all dead" verdict must degrade to slower
// requests, never to refused ones.
//
// Health is safe for concurrent use.
type Health struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu    sync.Mutex
	peers map[string]*peerState
}

type peerState struct {
	failures    int       // consecutive failures
	ejectedAt   time.Time // when the breaker last opened
	ejected     bool
	probing     bool // a half-open probe is in flight
	ejectedEver int64
}

// DefaultThreshold and DefaultCooldown are the router defaults: three
// consecutive failures eject a peer, and it is re-probed after a second.
const (
	DefaultThreshold = 3
	DefaultCooldown  = time.Second
)

// NewHealth creates a tracker. threshold <= 0 selects DefaultThreshold;
// cooldown <= 0 selects DefaultCooldown.
func NewHealth(threshold int, cooldown time.Duration) *Health {
	return newHealthClock(threshold, cooldown, time.Now)
}

// newHealthClock injects the clock for tests.
func newHealthClock(threshold int, cooldown time.Duration, now func() time.Time) *Health {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultCooldown
	}
	return &Health{threshold: threshold, cooldown: cooldown, now: now, peers: make(map[string]*peerState)}
}

func (h *Health) state(peer string) *peerState {
	ps, ok := h.peers[peer]
	if !ok {
		ps = &peerState{}
		h.peers[peer] = ps
	}
	return ps
}

// Allow reports whether the router should send peer a request right now.
// An ejected peer answers false until its cooldown elapses, then true for
// exactly one caller (the half-open probe); others keep getting false
// until the probe settles via Success or Failure.
func (h *Health) Allow(peer string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	ps := h.state(peer)
	if !ps.ejected {
		return true
	}
	if ps.probing || h.now().Sub(ps.ejectedAt) < h.cooldown {
		return false
	}
	ps.probing = true
	return true
}

// TryProbe claims the half-open probe for an ejected peer whose cooldown
// has elapsed: it returns true for exactly one caller, which must settle
// the probe via Success or Failure. Routable peers, peers still cooling
// down, and peers with a probe already in flight return false. Routers
// use it to run probes out-of-band (against /healthz) so no live request
// ever pays a known-dead peer's dial; Allow remains the inline variant
// where the probe rides a real request.
func (h *Health) TryProbe(peer string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	ps := h.state(peer)
	if !ps.ejected || ps.probing || h.now().Sub(ps.ejectedAt) < h.cooldown {
		return false
	}
	ps.probing = true
	return true
}

// Success records a successful exchange with peer, closing its breaker.
func (h *Health) Success(peer string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ps := h.state(peer)
	ps.failures = 0
	ps.ejected = false
	ps.probing = false
}

// Failure records a failed exchange with peer; crossing the threshold
// (or failing a half-open probe) ejects it for a fresh cooldown.
func (h *Health) Failure(peer string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ps := h.state(peer)
	ps.failures++
	if ps.probing || ps.failures >= h.threshold {
		// A failed half-open probe restarts the cooldown but is not a new
		// ejection event.
		if !ps.ejected {
			ps.ejectedEver++
		}
		ps.ejected = true
		ps.probing = false
		ps.ejectedAt = h.now()
	}
}

// Healthy reports whether peer is currently routable without a probe.
func (h *Health) Healthy(peer string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	ps, ok := h.peers[peer]
	return !ok || !ps.ejected
}

// PeerHealth is a snapshot of one peer's breaker, for /metrics.
type PeerHealth struct {
	Failures  int   // current consecutive failures
	Ejected   bool  // breaker open right now
	Ejections int64 // lifetime count of threshold crossings
}

// Snapshot returns the breaker state of every peer ever recorded.
func (h *Health) Snapshot() map[string]PeerHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]PeerHealth, len(h.peers))
	for name, ps := range h.peers {
		out[name] = PeerHealth{Failures: ps.failures, Ejected: ps.ejected, Ejections: ps.ejectedEver}
	}
	return out
}
