// Package cluster is the placement layer of a multi-node ipcompd
// deployment: it decides, for every container name, which peers own it.
//
// The design leans on the protocol's statelessness. A region response is
// a deterministic function of (container bytes, dataset, region, bound),
// and refinement tokens are self-contained receipts, so any replica of a
// container can answer any request about it — including honoring a token
// minted by a different replica. Placement therefore never has to move
// state around; it is purely a routing detail (the venti stance: dumb
// ranged-read storage behind a narrow protocol).
//
// Two pieces live here, both deliberately free of I/O so they are
// trivially testable and reusable:
//
//   - Ring: a consistent-hash ring over container names with configurable
//     virtual nodes and R-way replication. Membership is fixed at
//     construction — production deployments pass the same -peers list to
//     every node, which is what makes every node compute identical replica
//     sets. Node failure is handled by routing-time failover, not by ring
//     mutation, so a bounced node comes back owning exactly what it owned
//     before.
//
//   - Health: a per-peer consecutive-failure breaker with probed
//     (half-open) recovery, used by the router tier in internal/server to
//     stop hammering a dead peer while still re-trying it after a cooldown.
//
// The router itself (request forwarding, failover order, counters) lives
// in internal/server, next to the handlers it wraps.
package cluster
