package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAcrossBuilds(t *testing.T) {
	// Two rings built from the same membership in different input order
	// must agree on every placement — that is what lets every node route
	// without coordination.
	a, err := New([]string{"n1", "n2", "n3"}, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New([]string{"n3", "n1", "n2"}, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("container-%d.ipcs", i)
		ra, rb := a.Replicas(key), b.Replicas(key)
		if len(ra) != 2 || len(rb) != 2 {
			t.Fatalf("replicas(%q) = %v / %v, want 2 each", key, ra, rb)
		}
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("replica order differs for %q: %v vs %v", key, ra, rb)
			}
		}
		if ra[0] == ra[1] {
			t.Fatalf("replicas(%q) not distinct: %v", key, ra)
		}
	}
}

func TestRingSpread(t *testing.T) {
	nodes := []string{"a", "b", "c", "d", "e"}
	r, err := New(nodes, 1, 0) // default vnodes
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const keys = 5000
	for i := 0; i < keys; i++ {
		counts[r.Primary(fmt.Sprintf("c%d", i))]++
	}
	for _, n := range nodes {
		got := counts[n]
		// Perfect balance is keys/5 = 1000; virtual nodes should keep every
		// node within a loose factor-of-two envelope.
		if got < keys/10 || got > keys*2/5 {
			t.Errorf("node %s owns %d/%d primaries — placement badly skewed (%v)", n, got, keys, counts)
		}
	}
}

func TestRingReplicationClampAndOwns(t *testing.T) {
	r, err := New([]string{"solo"}, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Replication() != 1 {
		t.Errorf("replication = %d, want clamped 1", r.Replication())
	}
	if got := r.Replicas("x"); len(got) != 1 || got[0] != "solo" {
		t.Errorf("replicas = %v", got)
	}
	if !r.Owns("solo", "x") || r.Owns("ghost", "x") {
		t.Error("ownership wrong for single-node ring")
	}
}

func TestRingMinimalDisruption(t *testing.T) {
	// Consistent hashing's point: adding a node moves only ~1/N of the
	// keyspace. Compare primaries between a 4-node and 5-node ring.
	old, err := New([]string{"a", "b", "c", "d"}, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := New([]string{"a", "b", "c", "d", "e"}, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 2000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("c%d", i)
		if old.Primary(key) != grown.Primary(key) {
			moved++
			if grown.Primary(key) != "e" {
				t.Fatalf("key %q moved to %q, not the new node", key, grown.Primary(key))
			}
		}
	}
	// Expect ~1/5 moved; far more means the hash is not consistent.
	if moved > keys*2/5 {
		t.Errorf("%d/%d keys moved when adding one node to four", moved, keys)
	}
	if moved == 0 {
		t.Error("no keys moved to the new node at all")
	}
}

func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := New(nil, 1, 8); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := New([]string{"a", "a"}, 1, 8); err == nil {
		t.Error("duplicate node accepted")
	}
	if _, err := New([]string{"a", ""}, 1, 8); err == nil {
		t.Error("empty node name accepted")
	}
	if _, err := New([]string{"a"}, 0, 8); err == nil {
		t.Error("replication 0 accepted")
	}
}
