package cluster

import (
	"sync"
	"testing"
	"time"
)

func TestHealthEjectionAndProbe(t *testing.T) {
	now := time.Unix(0, 0)
	h := newHealthClock(3, time.Second, func() time.Time { return now })

	if !h.Allow("p") || !h.Healthy("p") {
		t.Fatal("unknown peer should be routable")
	}
	h.Failure("p")
	h.Failure("p")
	if !h.Allow("p") {
		t.Fatal("two failures must not eject below threshold 3")
	}
	h.Failure("p")
	if h.Allow("p") || h.Healthy("p") {
		t.Fatal("third consecutive failure should eject")
	}

	// Cooldown elapses: exactly one probe gets through.
	now = now.Add(time.Second)
	if !h.Allow("p") {
		t.Fatal("cooldown elapsed, probe should be allowed")
	}
	if h.Allow("p") {
		t.Fatal("second caller should wait for the in-flight probe")
	}

	// Failed probe re-ejects immediately (no threshold accumulation).
	h.Failure("p")
	if h.Allow("p") {
		t.Fatal("failed probe should re-eject")
	}
	now = now.Add(time.Second)
	if !h.Allow("p") {
		t.Fatal("second cooldown elapsed, probe should be allowed again")
	}
	h.Success("p")
	if !h.Allow("p") || !h.Allow("p") || !h.Healthy("p") {
		t.Fatal("successful probe should fully restore the peer")
	}

	snap := h.Snapshot()
	if ph := snap["p"]; ph.Ejected || ph.Failures != 0 || ph.Ejections != 1 {
		t.Errorf("snapshot = %+v, want closed breaker with 1 lifetime ejection", ph)
	}
}

func TestHealthTryProbe(t *testing.T) {
	now := time.Unix(0, 0)
	h := newHealthClock(2, time.Second, func() time.Time { return now })

	if h.TryProbe("p") {
		t.Fatal("routable peer must not claim a probe")
	}
	h.Failure("p")
	h.Failure("p")
	if h.Healthy("p") {
		t.Fatal("two failures at threshold 2 should eject")
	}
	if h.TryProbe("p") {
		t.Fatal("probe must wait out the cooldown")
	}
	now = now.Add(time.Second)
	if !h.TryProbe("p") {
		t.Fatal("cooldown elapsed, probe should be claimable")
	}
	if h.TryProbe("p") || h.Allow("p") {
		t.Fatal("a second probe must not run while one is in flight")
	}
	if h.Healthy("p") {
		t.Fatal("an in-flight probe does not make the peer routable")
	}
	h.Success("p")
	if !h.Healthy("p") || h.TryProbe("p") {
		t.Fatal("successful probe restores routing and releases the probe slot")
	}

	// A failed probe restarts the cooldown.
	h.Failure("p")
	h.Failure("p")
	now = now.Add(time.Second)
	if !h.TryProbe("p") {
		t.Fatal("probe after second ejection")
	}
	h.Failure("p")
	if h.TryProbe("p") {
		t.Fatal("failed probe must restart the cooldown")
	}
	now = now.Add(time.Second)
	if !h.TryProbe("p") {
		t.Fatal("probe after restarted cooldown")
	}
}

func TestHealthSuccessResetsCount(t *testing.T) {
	h := NewHealth(3, time.Minute)
	h.Failure("p")
	h.Failure("p")
	h.Success("p")
	h.Failure("p")
	h.Failure("p")
	if !h.Healthy("p") {
		t.Fatal("success between failures must reset the consecutive count")
	}
}

func TestHealthConcurrent(t *testing.T) {
	h := NewHealth(2, time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				h.Allow("p")
				h.Failure("p")
				h.Success("p")
				h.Snapshot()
			}
		}()
	}
	wg.Wait()
}
