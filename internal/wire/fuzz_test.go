package wire_test

import (
	"bytes"
	"io"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/grid"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/wire"
)

// consumeFrames walks a planes response the way ipcomp/client does —
// region header, then chunk frames, then span headers with payloads —
// stopping at the first error. Payloads are discarded rather than
// buffered so a forged multi-gigabyte span length cannot allocate.
func consumeFrames(r io.Reader) error {
	h, err := wire.ReadRegionHeader(r)
	if err != nil {
		return err
	}
	for i := 0; i < h.NumChunks; i++ {
		ch, err := wire.ReadChunkHeader(r, h.Rank)
		if err != nil {
			return err
		}
		for s := 0; s < ch.NumSpans; s++ {
			sp, err := wire.ReadSpanHeader(r)
			if err != nil {
				return err
			}
			if _, err := io.CopyN(io.Discard, r, sp.Len); err != nil {
				return err
			}
		}
	}
	return nil
}

// realPlanesResponse packs a small container, serves it with the real
// handler, and captures an actual planes response body — the corpus seed
// the fuzzer mutates from.
var realPlanesResponse = sync.OnceValues(func() ([]byte, error) {
	g, err := datagen.GenerateShape("Density", grid.Shape{16, 24, 24})
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	w, err := store.NewWriter(&buf)
	if err != nil {
		return nil, err
	}
	if err := w.AddGrid("d", g, store.WriteOptions{
		ErrorBound: 1e-4 * g.ValueRange(), ChunkShape: grid.Shape{16, 16, 16},
	}); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	st, err := store.Open(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		return nil, err
	}
	srv := server.New()
	if err := srv.AddStore("c.ipcs", st); err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/datasets/d/region?lo=0,0,0&hi=16,24,24&format=planes")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
})

// FuzzFrame feeds mutated planes responses to the frame parser: malformed
// magic, ranks, lengths, and truncations must all surface as errors,
// never as panics or unbounded allocations.
func FuzzFrame(f *testing.F) {
	seed, err := realPlanesResponse()
	if err != nil {
		f.Fatal(err)
	}
	if err := consumeFrames(bytes.NewReader(seed)); err != nil {
		f.Fatalf("real planes response does not parse: %v", err)
	}
	f.Add(seed)
	// Truncations at every interesting boundary: inside the region header,
	// at the first chunk frame, mid span header, mid payload.
	for _, n := range []int{0, 1, 3, 4, 5, 8, 16, 40, 41, 60, 100} {
		if n < len(seed) {
			f.Add(seed[:n])
		}
	}
	// A few targeted corruptions (bad magic, absurd rank, flipped length).
	for _, idx := range []int{0, 5, 6, 40} {
		if idx < len(seed) {
			mut := bytes.Clone(seed)
			mut[idx] ^= 0xFF
			f.Add(mut)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		consumeFrames(bytes.NewReader(data)) // must not panic
	})
}

// TestFrameSeedRoundTrip keeps the seed generation honest in plain `go
// test` runs (the fuzz engine only runs seeds under -fuzz).
func TestFrameSeedRoundTrip(t *testing.T) {
	seed, err := realPlanesResponse()
	if err != nil {
		t.Fatal(err)
	}
	if err := consumeFrames(bytes.NewReader(seed)); err != nil {
		t.Fatalf("captured planes response does not parse: %v", err)
	}
	if err := consumeFrames(bytes.NewReader(seed[:len(seed)-1])); err == nil {
		t.Error("truncated response parsed cleanly")
	}
}
