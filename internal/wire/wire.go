// Package wire defines the binary framing of ipcompd's progressive region
// responses (format=planes). A response carries, per intersecting tile,
// the tile's loading plan and the raw archive byte ranges the client is
// missing — compressed bitplane blocks exactly as they sit in the
// container, never re-encoded. The same framing serves fresh retrievals
// (ranges start with the tile's archive header) and refinements (ranges
// cover only the newly selected planes), which is what makes a refinement
// response a strict delta. docs/PROTOCOL.md is the authoritative spec;
// this package is its implementation, shared by internal/server (writer)
// and ipcomp/client (reader).
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/core"
)

// Magic opens every planes response ("IPRF" little-endian).
const Magic = 0x46525049

// Version is the framing version.
const Version = 1

// MaxRank bounds the rank field when decoding untrusted frames.
const MaxRank = 16

// RegionHeader is the fixed preamble of a planes response.
type RegionHeader struct {
	Scalar core.ScalarType
	Rank   int
	// Lo, Hi is the region in dataset coordinates.
	Lo, Hi []int
	// Bound is the normalized absolute error bound this response raises
	// the client to; it is also what the refinement token certifies.
	Bound float64
	// Guaranteed is the worst guaranteed L∞ error across the region once
	// the response is applied (tiles the response omits included).
	Guaranteed float64
	// NumChunks is the number of chunk frames that follow.
	NumChunks int
}

// ChunkHeader precedes one tile's spans.
type ChunkHeader struct {
	// Index is the tile's linear index in the dataset's chunk grid.
	Index int
	// Lo, Hi is the tile's box in dataset coordinates.
	Lo, Hi []int
	// BlobSize is the total size of the tile's archive, which a client
	// needs to construct its block source.
	BlobSize int64
	// Keep is the tile's loading plan after this frame is applied.
	Keep []int
	// NumSpans is the number of (offset, length, payload) ranges following.
	NumSpans int
}

// SpanHeader precedes one raw byte range; Len payload bytes follow it.
type SpanHeader struct {
	Off int64
	Len int64
}

type leWriter struct {
	w   io.Writer
	err error
}

func (w *leWriter) write(v any) {
	if w.err == nil {
		w.err = binary.Write(w.w, binary.LittleEndian, v)
	}
}

// WriteRegionHeader emits the response preamble.
func WriteRegionHeader(w io.Writer, h *RegionHeader) error {
	lw := &leWriter{w: w}
	lw.write(uint32(Magic))
	lw.write(uint8(Version))
	lw.write(uint8(h.Scalar))
	lw.write(uint8(h.Rank))
	lw.write(uint8(0)) // reserved
	for _, v := range h.Lo {
		lw.write(uint32(v))
	}
	for i, v := range h.Hi {
		lw.write(uint32(v - h.Lo[i]))
	}
	lw.write(h.Bound)
	lw.write(h.Guaranteed)
	lw.write(uint32(h.NumChunks))
	return lw.err
}

// WriteChunkHeader emits one tile's frame header.
func WriteChunkHeader(w io.Writer, h *ChunkHeader) error {
	lw := &leWriter{w: w}
	lw.write(uint32(h.Index))
	for _, v := range h.Lo {
		lw.write(uint32(v))
	}
	for i, v := range h.Hi {
		lw.write(uint32(v - h.Lo[i]))
	}
	lw.write(uint64(h.BlobSize))
	lw.write(uint8(len(h.Keep)))
	for _, k := range h.Keep {
		lw.write(uint8(k))
	}
	lw.write(uint16(h.NumSpans))
	return lw.err
}

// MaxSpanLen is the largest payload one span header can frame (its
// length field is u32). Larger ranges must be split by the sender.
const MaxSpanLen = math.MaxUint32

// WriteSpanHeader emits one range header; the caller streams the payload.
func WriteSpanHeader(w io.Writer, s SpanHeader) error {
	if s.Len < 0 || s.Len > MaxSpanLen {
		return fmt.Errorf("wire: span length %d outside the u32 framing field", s.Len)
	}
	lw := &leWriter{w: w}
	lw.write(uint64(s.Off))
	lw.write(uint32(s.Len))
	return lw.err
}

// RegionHeaderSize returns the encoded preamble size for a rank.
func RegionHeaderSize(rank int) int64 { return 4 + 4 + int64(rank)*8 + 8 + 8 + 4 }

// ChunkHeaderSize returns the encoded chunk frame header size.
func ChunkHeaderSize(rank, levels int) int64 { return 4 + int64(rank)*8 + 8 + 1 + int64(levels) + 2 }

// SpanHeaderSize is the encoded span header size.
const SpanHeaderSize = 12

type leReader struct {
	r   io.Reader
	b   [8]byte
	err error
}

func (r *leReader) read(n int) []byte {
	if r.err != nil {
		return r.b[:n]
	}
	_, r.err = io.ReadFull(r.r, r.b[:n])
	return r.b[:n]
}

func (r *leReader) u8() uint8   { return r.read(1)[0] }
func (r *leReader) u16() uint16 { return binary.LittleEndian.Uint16(r.read(2)) }
func (r *leReader) u32() uint32 { return binary.LittleEndian.Uint32(r.read(4)) }
func (r *leReader) u64() uint64 { return binary.LittleEndian.Uint64(r.read(8)) }
func (r *leReader) f64() float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(r.read(8)))
}

// ReadRegionHeader parses the response preamble.
func ReadRegionHeader(r io.Reader) (*RegionHeader, error) {
	lr := &leReader{r: r}
	if m := lr.u32(); lr.err == nil && m != Magic {
		return nil, fmt.Errorf("wire: bad response magic %#x", m)
	}
	if v := lr.u8(); lr.err == nil && v != Version {
		return nil, fmt.Errorf("wire: unsupported frame version %d", v)
	}
	h := &RegionHeader{}
	h.Scalar = core.ScalarType(lr.u8())
	h.Rank = int(lr.u8())
	lr.u8() // reserved
	if lr.err == nil && (h.Rank == 0 || h.Rank > MaxRank) {
		return nil, fmt.Errorf("wire: invalid rank %d", h.Rank)
	}
	if lr.err == nil && h.Scalar != core.Float64 && h.Scalar != core.Float32 {
		return nil, fmt.Errorf("wire: unknown scalar type %d", h.Scalar)
	}
	h.Lo = make([]int, h.Rank)
	h.Hi = make([]int, h.Rank)
	for i := range h.Lo {
		h.Lo[i] = int(lr.u32())
	}
	for i := range h.Hi {
		h.Hi[i] = h.Lo[i] + int(lr.u32())
	}
	h.Bound = lr.f64()
	h.Guaranteed = lr.f64()
	h.NumChunks = int(lr.u32())
	if lr.err != nil {
		return nil, fmt.Errorf("wire: truncated region header: %w", lr.err)
	}
	return h, nil
}

// ReadChunkHeader parses one tile frame header.
func ReadChunkHeader(r io.Reader, rank int) (*ChunkHeader, error) {
	lr := &leReader{r: r}
	h := &ChunkHeader{}
	h.Index = int(lr.u32())
	h.Lo = make([]int, rank)
	h.Hi = make([]int, rank)
	for i := range h.Lo {
		h.Lo[i] = int(lr.u32())
	}
	for i := range h.Hi {
		h.Hi[i] = h.Lo[i] + int(lr.u32())
	}
	h.BlobSize = int64(lr.u64())
	nlev := int(lr.u8())
	if lr.err == nil && nlev > 64 {
		return nil, fmt.Errorf("wire: implausible level count %d", nlev)
	}
	h.Keep = make([]int, nlev)
	for i := range h.Keep {
		h.Keep[i] = int(lr.u8())
	}
	h.NumSpans = int(lr.u16())
	if lr.err != nil {
		return nil, fmt.Errorf("wire: truncated chunk header: %w", lr.err)
	}
	if h.BlobSize <= 0 {
		return nil, fmt.Errorf("wire: chunk %d declares blob size %d", h.Index, h.BlobSize)
	}
	return h, nil
}

// ReadSpanHeader parses one range header; the caller must then consume
// exactly Len payload bytes.
func ReadSpanHeader(r io.Reader) (SpanHeader, error) {
	lr := &leReader{r: r}
	s := SpanHeader{}
	s.Off = int64(lr.u64())
	s.Len = int64(lr.u32())
	if lr.err != nil {
		return s, fmt.Errorf("wire: truncated span header: %w", lr.err)
	}
	if s.Off < 0 {
		return s, fmt.Errorf("wire: negative span offset %d", s.Off)
	}
	return s, nil
}
