// Package datagen synthesizes stand-ins for the six SDRBench fields the
// paper evaluates on (Table 3). The real datasets are multi-hundred-MB
// binaries that cannot ship with this repository, so each generator
// reproduces the statistical character that drives compressor behaviour —
// smoothness, spectral decay, anisotropy, fronts — at a configurable scale.
// See DESIGN.md ("Substitutions").
//
// All generators are deterministic for a given seed.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/grid"
)

// Dataset couples a generated field with its paper metadata.
type Dataset struct {
	Name   string
	Domain string
	// PaperShape is the shape used in the paper's Table 3.
	PaperShape grid.Shape
	Grid       *grid.Grid[float64]
}

// Names lists the six fields in the paper's order.
func Names() []string {
	return []string{"Density", "Pressure", "VelocityX", "Wave", "SpeedX", "CH4"}
}

// paperShapes from Table 3 of the paper.
var paperShapes = map[string]grid.Shape{
	"Density":   {256, 384, 384},
	"Pressure":  {256, 384, 384},
	"VelocityX": {256, 384, 384},
	"Wave":      {1008, 1008, 352},
	"SpeedX":    {100, 500, 500},
	"CH4":       {500, 500, 500},
}

var domains = map[string]string{
	"Density":   "turbulence",
	"Pressure":  "turbulence",
	"VelocityX": "turbulence",
	"Wave":      "seismic",
	"SpeedX":    "weather",
	"CH4":       "combustion",
}

// Generate builds the named dataset at 1/divisor of the paper's linear
// resolution (divisor 1 reproduces the paper's shapes; the test suite and
// default benches use 4 or 8).
func Generate(name string, divisor int) (*Dataset, error) {
	ps, ok := paperShapes[name]
	if !ok {
		return nil, fmt.Errorf("datagen: unknown dataset %q (have %v)", name, Names())
	}
	if divisor < 1 {
		divisor = 1
	}
	shape := make(grid.Shape, len(ps))
	for i, d := range ps {
		shape[i] = d / divisor
		if shape[i] < 8 {
			shape[i] = 8
		}
	}
	g, err := GenerateShape(name, shape)
	if err != nil {
		return nil, err
	}
	return &Dataset{Name: name, Domain: domains[name], PaperShape: ps, Grid: g}, nil
}

// GenerateShape builds the named field at an explicit shape.
func GenerateShape(name string, shape grid.Shape) (*grid.Grid[float64], error) {
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	switch name {
	case "Density":
		return turbulence(shape, 101, 1.0, 3.2, true), nil
	case "Pressure":
		return turbulence(shape, 202, 5.0, 3.6, false), nil
	case "VelocityX":
		return turbulence(shape, 303, 1.5, 2.6, false), nil
	case "Wave":
		return wavefield(shape, 404), nil
	case "SpeedX":
		return windSpeed(shape, 505), nil
	case "CH4":
		return combustion(shape, 606), nil
	default:
		return nil, fmt.Errorf("datagen: unknown dataset %q", name)
	}
}

// All generates the whole suite at the given divisor.
func All(divisor int) ([]*Dataset, error) {
	out := make([]*Dataset, 0, 6)
	for _, n := range Names() {
		d, err := Generate(n, divisor)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// coordinates iterates normalized coordinates once per point.
func coordinates(shape grid.Shape, fn func(i int, c []float64)) {
	nd := len(shape)
	strides := shape.Strides()
	c := make([]float64, nd)
	n := shape.Len()
	for i := 0; i < n; i++ {
		rem := i
		for d := 0; d < nd; d++ {
			c[d] = float64(rem/strides[d]) / float64(shape[d])
			rem %= strides[d]
		}
		fn(i, c)
	}
}

// turbulence builds a multi-octave random Fourier field with power-law
// spectral decay — the classic synthetic turbulence construction. exponent
// controls how fast fine scales die off (larger = smoother); positive
// fields (density-like) are exponentiated.
func turbulence(shape grid.Shape, seed int64, base, exponent float64, positive bool) *grid.Grid[float64] {
	r := rand.New(rand.NewSource(seed))
	nd := len(shape)
	// The finest octave keeps >= ~16 samples per wavelength at this
	// resolution, so the sampled field is genuinely smooth at cell level —
	// like the paper's real fields at their native resolution. Coarser
	// sampling (larger divisor) resolves fewer octaves.
	minExt := shape[0]
	for _, d := range shape {
		if d < minExt {
			minExt = d
		}
	}
	maxScale := float64(minExt) / 16
	const modesPerOctave = 8
	type mode struct {
		amp, phase float64
		freq       []float64
	}
	var modes []mode
	for o := 0; ; o++ {
		scale := math.Pow(2, float64(o))
		if scale > maxScale && o > 0 {
			break
		}
		amp := math.Pow(scale, -exponent/2)
		for m := 0; m < modesPerOctave; m++ {
			f := make([]float64, nd)
			for d := 0; d < nd; d++ {
				f[d] = (r.Float64()*2 - 1) * scale * 2 * math.Pi
			}
			modes = append(modes, mode{
				amp:   amp * r.NormFloat64(),
				phase: r.Float64() * 2 * math.Pi,
				freq:  f,
			})
		}
	}
	g := grid.MustNew[float64](shape)
	data := g.Data()
	coordinates(shape, func(i int, c []float64) {
		v := 0.0
		for _, m := range modes {
			arg := m.phase
			for d := 0; d < nd; d++ {
				arg += m.freq[d] * c[d]
			}
			v += m.amp * math.Sin(arg)
		}
		if positive {
			data[i] = base * math.Exp(0.6*v)
		} else {
			data[i] = base * v
		}
	})
	return g
}

// wavefield mimics a seismic wavefield snapshot: expanding oscillatory
// spherical fronts from a few sources over a smooth background velocity
// structure, with amplitude decaying away from each front.
func wavefield(shape grid.Shape, seed int64) *grid.Grid[float64] {
	r := rand.New(rand.NewSource(seed))
	nd := len(shape)
	type source struct {
		center []float64
		radius float64 // current front radius in normalized units
		freq   float64
		amp    float64
	}
	minExt := shape[0]
	for _, d := range shape {
		if d < minExt {
			minExt = d
		}
	}
	// Packet frequency keeps >= ~10 samples per oscillation at this
	// resolution (2π·k radians across the domain, k wavelengths).
	maxWavelengths := float64(minExt) / 10
	sources := make([]source, 5)
	for s := range sources {
		ctr := make([]float64, nd)
		for d := range ctr {
			ctr[d] = r.Float64()
		}
		sources[s] = source{
			center: ctr,
			radius: 0.15 + 0.5*r.Float64(),
			freq:   2 * math.Pi * maxWavelengths * (0.4 + 0.6*r.Float64()),
			amp:    0.5 + r.Float64(),
		}
	}
	background := turbulence(shape, seed+1, 0.05, 3.8, false)
	g := grid.MustNew[float64](shape)
	data := g.Data()
	bg := background.Data()
	coordinates(shape, func(i int, c []float64) {
		v := bg[i]
		for _, s := range sources {
			d2 := 0.0
			for d := 0; d < nd; d++ {
				dd := c[d] - s.center[d]
				d2 += dd * dd
			}
			dist := math.Sqrt(d2)
			// Wave packet around the current front radius.
			x := (dist - s.radius) * s.freq
			v += s.amp * math.Exp(-0.5*x*x/9) * math.Sin(x)
		}
		data[i] = v
	})
	return g
}

// windSpeed mimics an x-direction wind speed field: strong zonal jets
// varying with "latitude" (the second axis), modulated by synoptic-scale
// turbulence and weak small-scale noise.
func windSpeed(shape grid.Shape, seed int64) *grid.Grid[float64] {
	turb := turbulence(shape, seed, 1.0, 3.0, false)
	g := grid.MustNew[float64](shape)
	data := g.Data()
	td := turb.Data()
	coordinates(shape, func(i int, c []float64) {
		lat := c[len(c)-2] // second-to-last axis as latitude when 3D
		jet := 18*math.Sin(3*math.Pi*lat)*math.Exp(-4*(lat-0.5)*(lat-0.5)) +
			6*math.Sin(math.Pi*lat)
		vertical := 1.0
		if len(c) == 3 {
			// Wind strengthens with altitude (first axis).
			vertical = 0.5 + c[0]
		}
		data[i] = jet*vertical + 1.5*td[i]
	})
	return g
}

// combustion mimics a CH4 mass-fraction field: values in [0,1] with sharp
// reaction fronts (sigmoid shells) separating burned and unburned regions,
// plus mild in-region variation.
func combustion(shape grid.Shape, seed int64) *grid.Grid[float64] {
	r := rand.New(rand.NewSource(seed))
	nd := len(shape)
	type pocket struct {
		center []float64
		radius float64
		width  float64
	}
	pockets := make([]pocket, 6)
	for p := range pockets {
		ctr := make([]float64, nd)
		for d := range ctr {
			ctr[d] = r.Float64()
		}
		pockets[p] = pocket{center: ctr, radius: 0.1 + 0.25*r.Float64(), width: 0.01 + 0.02*r.Float64()}
	}
	wrinkle := turbulence(shape, seed+2, 0.02, 3.0, false)
	g := grid.MustNew[float64](shape)
	data := g.Data()
	wd := wrinkle.Data()
	coordinates(shape, func(i int, c []float64) {
		burned := 0.0
		for _, p := range pockets {
			d2 := 0.0
			for d := 0; d < nd; d++ {
				dd := c[d] - p.center[d]
				d2 += dd * dd
			}
			dist := math.Sqrt(d2) + wd[i] // wrinkled front
			burned += 1 / (1 + math.Exp((dist-p.radius)/p.width))
		}
		if burned > 1 {
			burned = 1
		}
		// Unburned region keeps CH4 near 0.06; burned regions deplete it.
		v := 0.06 * (1 - burned) * (1 + 0.15*wd[i]/0.02*0.1)
		if v < 0 {
			v = 0
		}
		data[i] = v
	})
	return g
}
