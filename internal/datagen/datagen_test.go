package datagen

import (
	"math"
	"testing"

	"repro/internal/grid"
)

func TestAllDatasetsGenerate(t *testing.T) {
	dss, err := All(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(dss) != 6 {
		t.Fatalf("got %d datasets", len(dss))
	}
	for _, ds := range dss {
		if ds.Grid.Len() == 0 {
			t.Errorf("%s: empty grid", ds.Name)
		}
		if ds.Grid.ValueRange() <= 0 {
			t.Errorf("%s: degenerate value range", ds.Name)
		}
		for _, v := range ds.Grid.Data() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: non-finite value", ds.Name)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Generate("Density", 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("Density", 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Grid.Data() {
		if a.Grid.Data()[i] != b.Grid.Data()[i] {
			t.Fatalf("non-deterministic at %d", i)
		}
	}
}

func TestDatasetsDiffer(t *testing.T) {
	a, _ := Generate("Density", 16)
	b, _ := Generate("Pressure", 16)
	same := 0
	for i := range a.Grid.Data() {
		if a.Grid.Data()[i] == b.Grid.Data()[i] {
			same++
		}
	}
	if same > a.Grid.Len()/100 {
		t.Errorf("Density and Pressure share %d of %d values", same, a.Grid.Len())
	}
}

func TestShapesScaleWithDivisor(t *testing.T) {
	ds, err := Generate("SpeedX", 4)
	if err != nil {
		t.Fatal(err)
	}
	want := grid.Shape{25, 125, 125}
	if !ds.Grid.Shape().Equal(want) {
		t.Errorf("shape %v, want %v", ds.Grid.Shape(), want)
	}
	if !ds.PaperShape.Equal(grid.Shape{100, 500, 500}) {
		t.Errorf("paper shape %v", ds.PaperShape)
	}
}

func TestDivisorFloor(t *testing.T) {
	// Huge divisor must clamp extents at 8, not collapse to zero.
	ds, err := Generate("Density", 1000)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds.Grid.Shape() {
		if d < 8 {
			t.Errorf("extent %d below floor", d)
		}
	}
}

func TestUnknownDataset(t *testing.T) {
	if _, err := Generate("NoSuch", 4); err == nil {
		t.Error("unknown dataset must error")
	}
	if _, err := GenerateShape("NoSuch", grid.Shape{8}); err == nil {
		t.Error("unknown dataset must error")
	}
}

func TestCH4IsMassFractionLike(t *testing.T) {
	ds, err := Generate("CH4", 16)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := ds.Grid.Range()
	if lo < 0 {
		t.Errorf("CH4 min %g < 0", lo)
	}
	if hi > 0.2 {
		t.Errorf("CH4 max %g implausibly large for a mass fraction", hi)
	}
}

func TestDensityIsPositive(t *testing.T) {
	ds, err := Generate("Density", 16)
	if err != nil {
		t.Fatal(err)
	}
	lo, _ := ds.Grid.Range()
	if lo <= 0 {
		t.Errorf("density must be positive, min %g", lo)
	}
}

func TestFieldsAreSmoothAtCellLevel(t *testing.T) {
	// Neighbour differences should be small relative to the range — the
	// property that makes interpolation-based compression effective and
	// that real SDRBench fields exhibit.
	for _, name := range Names() {
		ds, err := Generate(name, 8)
		if err != nil {
			t.Fatal(err)
		}
		data := ds.Grid.Data()
		shape := ds.Grid.Shape()
		stride := shape.Strides()[0]
		rangeV := ds.Grid.ValueRange()
		maxStep := 0.0
		for i := stride; i < len(data); i++ {
			d := math.Abs(data[i] - data[i-stride])
			if d > maxStep {
				maxStep = d
			}
		}
		if maxStep > 0.7*rangeV {
			t.Errorf("%s: neighbour step %.3g vs range %.3g — not smooth", name, maxStep, rangeV)
		}
	}
}
