package ipcomp

import (
	"fmt"
	"io"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/interp"
)

// Codec selects the final-stage per-plane entropy-coding policy. The zero
// value (CodecDeflate) reproduces the historical format byte for byte;
// CodecAuto lets the encoder pick the cheapest method per plane block and
// upgrades the archive to format version 3 only when a non-DEFLATE method
// actually wins somewhere.
type Codec = codec.Policy

const (
	// CodecDeflate always codes plane blocks with DEFLATE (v1/v2 archives,
	// bit-identical to earlier releases).
	CodecDeflate = codec.PolicyDeflate
	// CodecAuto picks the smallest of raw, RLE, Huffman, and DEFLATE per
	// block, emitting a v3 archive when that changes any byte.
	CodecAuto = codec.PolicyAuto
)

// ParseCodec parses the CLI spelling of a codec policy ("deflate", "auto").
func ParseCodec(s string) (Codec, error) { return codec.ParsePolicy(s) }

// CodecStat reports the compressed bytes this process moved through one
// block-coding method; see CodecStats.
type CodecStat = codec.MethodStat

// CodecStats snapshots process-wide per-method byte counters across every
// archive encoded or decoded (CLI, store, and server share them).
func CodecStats() []CodecStat { return codec.Stats() }

// Interpolation selects the prediction formula. The zero value picks the
// paper's default (cubic spline).
type Interpolation int

const (
	// DefaultInterpolation is cubic, the paper's default.
	DefaultInterpolation Interpolation = iota
	// Linear interpolation: midpoint average, amplification factor 1.
	Linear
	// Cubic interpolation: 4-point spline, amplification factor 1.25.
	Cubic
)

func (k Interpolation) kind() interp.Kind {
	if k == Linear {
		return interp.Linear
	}
	return interp.Cubic
}

// BoundMode selects the optimizer's error accounting; see core.BoundMode.
type BoundMode = core.BoundMode

const (
	// SafeBound (default) makes progressive error bounds hard guarantees.
	SafeBound = core.SafeBound
	// PaperBound uses the paper's Eq. (5) accounting, loading less data.
	PaperBound = core.PaperBound
)

// ScalarType identifies an archive's element type.
type ScalarType = core.ScalarType

const (
	// Float64 archives use the version-1 format.
	Float64 = core.Float64
	// Float32 archives use the version-2 format with 4-byte anchors.
	Float32 = core.Float32
)

// Options configures Compress.
type Options struct {
	// ErrorBound is the absolute point-wise error bound (required, > 0).
	ErrorBound float64
	// Relative, when true, interprets ErrorBound as a fraction of the data
	// value range (max-min), the convention used throughout the paper's
	// evaluation (e.g. eb = 1e-6 means 1e-6 x range).
	Relative bool
	// Interpolation defaults to Cubic (DefaultInterpolation).
	Interpolation Interpolation
	// ProgressiveThreshold is the minimum level size (elements) that is
	// bitplane-progressive; 0 means the library default.
	ProgressiveThreshold int
	// Codec selects the final-stage block-coding policy; the zero value
	// (CodecDeflate) keeps archives bit-identical to earlier releases.
	Codec Codec
}

// Compress encodes a row-major float64 array of the given shape into an
// IPComp archive (format version 1).
func Compress(data []float64, shape []int, opt Options) ([]byte, error) {
	return compressAs(data, shape, opt)
}

// CompressFloat32 encodes a row-major float32 array of the given shape into
// an IPComp archive (format version 2) — natively, with no widening copy:
// the compressor's work arrays and kernels run at 4 bytes per element. The
// error bound (absolute or relative) is honored exactly, like Compress.
func CompressFloat32(data []float32, shape []int, opt Options) ([]byte, error) {
	return compressAs(data, shape, opt)
}

func compressAs[T grid.Scalar](data []T, shape []int, opt Options) ([]byte, error) {
	g, err := grid.FromSlice(data, grid.Shape(shape))
	if err != nil {
		return nil, err
	}
	eb := opt.ErrorBound
	if opt.Relative {
		r := g.ValueRange()
		if r == 0 {
			r = 1 // constant field: any positive bound works
		}
		eb *= r
	}
	return core.Compress(g, core.Options{
		ErrorBound:           eb,
		Interpolation:        opt.Interpolation.kind(),
		ProgressiveThreshold: opt.ProgressiveThreshold,
		Codec:                opt.Codec,
	})
}

// Decompress fully reconstructs an archive, returning the data and shape
// as float64. Float32 archives are widened losslessly; use
// DecompressFloat32 for a native single-precision view.
func Decompress(blob []byte) ([]float64, []int, error) {
	res, shape, err := decompressResult(blob)
	if err != nil {
		return nil, nil, err
	}
	return res.Data(), shape, nil
}

// DecompressFloat32 fully reconstructs an archive as float32. For float32
// archives this is the native reconstruction; float64 archives are
// narrowed, losing precision beyond ~7 significant digits.
func DecompressFloat32(blob []byte) ([]float32, []int, error) {
	res, shape, err := decompressResult(blob)
	if err != nil {
		return nil, nil, err
	}
	return res.DataFloat32(), shape, nil
}

func decompressResult(blob []byte) (*core.Result, []int, error) {
	a, err := core.NewArchive(blob)
	if err != nil {
		return nil, nil, err
	}
	res, err := a.RetrieveAll()
	if err != nil {
		return nil, nil, err
	}
	return res, a.Shape(), nil
}

// Archive provides progressive access to a compressed dataset.
type Archive struct {
	a *core.Archive
}

// Open reads an in-memory archive. Only the header is parsed eagerly.
func Open(blob []byte) (*Archive, error) {
	a, err := core.NewArchive(blob)
	if err != nil {
		return nil, err
	}
	return &Archive{a: a}, nil
}

// OpenReaderAt opens an archive backed by an io.ReaderAt (such as an
// *os.File) of the given size. Retrievals read only the byte ranges their
// loading plans select — true partial I/O.
func OpenReaderAt(r io.ReaderAt, size int64) (*Archive, error) {
	a, err := core.NewArchiveReaderAt(r, size)
	if err != nil {
		return nil, err
	}
	return &Archive{a: a}, nil
}

// Shape returns the dataset's shape.
func (ar *Archive) Shape() []int { return ar.a.Shape() }

// NumElements returns the total element count.
func (ar *Archive) NumElements() int { return grid.Shape(ar.a.Shape()).Len() }

// ErrorBound returns the compression-time absolute error bound.
func (ar *Archive) ErrorBound() float64 { return ar.a.ErrorBound() }

// Scalar returns the archive's element type.
func (ar *Archive) Scalar() ScalarType { return ar.a.Scalar() }

// FormatVersion returns the archive format version: 1 for float64
// archives, 2 for float32, 3 when a non-default codec policy was used.
func (ar *Archive) FormatVersion() int { return ar.a.FormatVersion() }

// Codec returns the block-coding policy the archive was encoded under.
func (ar *Archive) Codec() Codec { return ar.a.Codec() }

// CompressedSize returns the total archive size in bytes.
func (ar *Archive) CompressedSize() int64 { return ar.a.TotalSize() }

// SetBoundMode switches between SafeBound and PaperBound accounting.
func (ar *Archive) SetBoundMode(m BoundMode) { ar.a.SetBoundMode(m) }

// RetrieveAll reconstructs at full fidelity.
func (ar *Archive) RetrieveAll() (*Result, error) {
	res, err := ar.a.RetrieveAll()
	if err != nil {
		return nil, err
	}
	return &Result{r: res}, nil
}

// RetrieveErrorBound reconstructs with the byte-minimal loading plan whose
// guaranteed L∞ error is at most the given absolute bound. The bound must
// be >= ErrorBound().
func (ar *Archive) RetrieveErrorBound(bound float64) (*Result, error) {
	res, err := ar.a.RetrieveErrorBound(bound)
	if err != nil {
		return nil, err
	}
	return &Result{r: res}, nil
}

// RetrieveBitrate reconstructs with the most accurate plan loading at most
// bitsPerValue bits per element (paper's fixed-rate mode).
func (ar *Archive) RetrieveBitrate(bitsPerValue float64) (*Result, error) {
	res, err := ar.a.RetrieveBitrate(bitsPerValue)
	if err != nil {
		return nil, err
	}
	return &Result{r: res}, nil
}

// Result is a progressive reconstruction that can be refined in place.
type Result struct {
	r *core.Result
}

// Scalar returns the reconstruction's element type (the archive's).
func (res *Result) Scalar() ScalarType { return res.r.Scalar() }

// Data returns the reconstructed values as float64. For float64 archives
// this is the shared backing slice (refinement mutates it in place); for
// float32 archives it is a widened lossless copy that does not observe
// later refinement — use DataFloat32 for the shared native view.
func (res *Result) Data() []float64 { return res.r.Data() }

// DataFloat32 returns the reconstructed values as float32. For float32
// archives this is the shared backing slice (refinement mutates it in
// place); for float64 archives it is a narrowed, precision-losing copy.
func (res *Result) DataFloat32() []float32 { return res.r.DataFloat32() }

// LoadedBytes reports the archive bytes read so far, header included.
func (res *Result) LoadedBytes() int64 { return res.r.LoadedBytes() }

// Bitrate reports loaded bits per value.
func (res *Result) Bitrate() float64 { return res.r.Bitrate() }

// GuaranteedError returns the L∞ bound guaranteed by the data loaded so far.
func (res *Result) GuaranteedError() float64 { return res.r.GuaranteedError() }

// RefineErrorBound loads the additional bitplanes needed to guarantee the
// tighter bound and updates the reconstruction in a single incremental pass.
func (res *Result) RefineErrorBound(bound float64) error {
	return res.r.RefineErrorBound(bound)
}

// RefineBitrate refines up to a total loaded-bitrate budget. Budgets below
// what has already been loaded are no-ops: progressive retrieval never
// unloads data.
func (res *Result) RefineBitrate(bitsPerValue float64) error {
	return res.r.RefineBitrate(bitsPerValue)
}

// RefineAll loads everything that remains, reaching full fidelity.
func (res *Result) RefineAll() error { return res.r.RefineAll() }

// String summarizes the result for logs.
func (res *Result) String() string {
	return fmt.Sprintf("ipcomp.Result{loaded=%dB bitrate=%.3f bound=%.3g}",
		res.LoadedBytes(), res.Bitrate(), res.GuaranteedError())
}
