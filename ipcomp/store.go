package ipcomp

import (
	"fmt"
	"io"
	"os"

	"repro/internal/backend"
	"repro/internal/grid"
	"repro/internal/store"
)

// StoreOptions configures how one dataset is added to a container.
type StoreOptions struct {
	// ErrorBound is the absolute point-wise error bound (required, > 0).
	ErrorBound float64
	// Relative interprets ErrorBound as a fraction of the dataset's value
	// range, the paper's convention. The range is computed over the whole
	// dataset, so every chunk shares one absolute bound.
	Relative bool
	// Interpolation defaults to Cubic (DefaultInterpolation).
	Interpolation Interpolation
	// ChunkShape is the tile shape; nil means 64 per dimension, clipped to
	// the dataset extents.
	ChunkShape []int
	// ProgressiveThreshold is the minimum level size (elements) that is
	// bitplane-progressive within each chunk; 0 means the library default.
	ProgressiveThreshold int
	// Codec selects the final-stage block-coding policy for every chunk;
	// the zero value (CodecDeflate) keeps containers bit-identical to
	// earlier releases.
	Codec Codec
}

// StoreWriter builds a chunked multi-dataset container. Each Add tiles the
// dataset and compresses the tiles in parallel; Close appends the index.
//
//	f, _ := os.Create("climate.ipcs")
//	sw, _ := ipcomp.NewStoreWriter(f)
//	sw.Add("temperature", temp, []int{256, 384, 384}, ipcomp.StoreOptions{
//		ErrorBound: 1e-6, Relative: true,
//	})
//	sw.Add("pressure", pres, []int{256, 384, 384}, ipcomp.StoreOptions{
//		ErrorBound: 1e-6, Relative: true,
//	})
//	sw.Close()
//	f.Close()
type StoreWriter struct {
	w *store.Writer
}

// NewStoreWriter starts a container on w. The writer streams: it never
// seeks, so any io.Writer works.
func NewStoreWriter(w io.Writer) (*StoreWriter, error) {
	sw, err := store.NewWriter(w)
	if err != nil {
		return nil, err
	}
	return &StoreWriter{w: sw}, nil
}

// Add compresses a row-major float64 dataset into the container under the
// given name.
func (sw *StoreWriter) Add(name string, data []float64, shape []int, opt StoreOptions) error {
	return addAs(sw, name, data, shape, opt)
}

// AddFloat32 compresses a row-major float32 dataset into the container
// natively: tiles stage and compress at 4 bytes per element, and the
// dataset's scalar type is recorded in the container index so retrievals
// come back as float32.
func (sw *StoreWriter) AddFloat32(name string, data []float32, shape []int, opt StoreOptions) error {
	return addAs(sw, name, data, shape, opt)
}

func addAs[T grid.Scalar](sw *StoreWriter, name string, data []T, shape []int, opt StoreOptions) error {
	g, err := grid.FromSlice(data, grid.Shape(shape))
	if err != nil {
		return err
	}
	eb := opt.ErrorBound
	if opt.Relative {
		r := g.ValueRange()
		if r == 0 {
			r = 1 // constant field: any positive bound works
		}
		eb *= r
	}
	return store.Add(sw.w, name, g, store.WriteOptions{
		ErrorBound:           eb,
		Interpolation:        opt.Interpolation.kind(),
		ChunkShape:           grid.Shape(opt.ChunkShape),
		ProgressiveThreshold: opt.ProgressiveThreshold,
		Codec:                opt.Codec,
	})
}

// Close appends the index and footer, completing the container. It does
// not close the underlying writer.
func (sw *StoreWriter) Close() error { return sw.w.Close() }

// StoreDataset summarizes one dataset of an open container.
type StoreDataset = store.DatasetInfo

// Region is a region-of-interest reconstruction from a Store.
type Region struct {
	r *store.Region
}

// Scalar returns the region's element type (the dataset's).
func (r *Region) Scalar() ScalarType { return r.r.Scalar() }

// Data returns the region's values in row-major order over Shape(), as
// float64; float32 regions are widened losslessly into a fresh copy.
func (r *Region) Data() []float64 { return r.r.Data() }

// DataFloat32 returns the region's values as float32: the native slice for
// float32 datasets, a narrowed (precision-losing) copy for float64 ones.
func (r *Region) DataFloat32() []float32 { return r.r.DataFloat32() }

// Shape returns the region's extents.
func (r *Region) Shape() []int { return r.r.Shape() }

// LoadedBytes reports the container bytes this query read; chunks already
// decoded in the store's cache are free.
func (r *Region) LoadedBytes() int64 { return r.r.LoadedBytes() }

// GuaranteedError is the L∞ bound guaranteed across the region.
func (r *Region) GuaranteedError() float64 { return r.r.GuaranteedError() }

// Chunks reports how many tiles the query touched.
func (r *Region) Chunks() int { return r.r.Chunks() }

// Store provides region-of-interest access to a chunked container. Every
// query opens only the tiles that intersect its region, retrieves each at
// the requested fidelity concurrently, and caches decoded tiles (LRU) so
// overlapping or repeated queries refine instead of re-decoding.
type Store struct {
	s *store.Store
	c io.Closer
}

// OpenStore opens a container through an io.ReaderAt of the given size.
// Only the index is read eagerly.
func OpenStore(r io.ReaderAt, size int64) (*Store, error) {
	s, err := store.Open(r, size)
	if err != nil {
		return nil, err
	}
	return &Store{s: s}, nil
}

// OpenStoreFile opens a container file. Close releases the file handle.
func OpenStoreFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	s, err := store.Open(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	return &Store{s: s, c: f}, nil
}

// OpenURL opens a container addressed by a local path or URL, routing the
// store's ranged reads through the matching storage backend:
//
//	/data/climate.ipcs                           local file
//	file:///data/climate.ipcs                    local file
//	http://host:8080                             an ipcompd origin (must serve exactly one container)
//	http://host:8080/v1/containers/climate.ipcs  one container of an ipcompd origin
//	https://cdn/data/climate.ipcs                a file on any Range-capable static server
//
// Remote (http/https) containers are opened through a read-through span
// cache (backend.DefaultCachedBytes), so repeated and refining queries
// fetch each byte range from the origin at most once; Stats reports the
// cache's counters. Close releases the backend.
func OpenURL(spec string) (*Store, error) {
	b, name, err := backend.Open(spec)
	if err != nil {
		return nil, err
	}
	if name == "" {
		names, err := b.List()
		if err != nil {
			backend.Close(b)
			return nil, err
		}
		if len(names) != 1 {
			backend.Close(b)
			return nil, fmt.Errorf("ipcomp: %q addresses %d containers %v; name one (e.g. append it to the URL or path)",
				spec, len(names), names)
		}
		name = names[0]
	}
	if backend.IsRemote(b) {
		b = backend.NewCached(b, backend.DefaultCachedBytes, 0)
	}
	s, err := store.OpenBackend(b, name)
	if err != nil {
		backend.Close(b)
		return nil, err
	}
	return &Store{s: s, c: backendCloser{b}}, nil
}

// backendCloser adapts backend.Close to io.Closer for Store.Close.
type backendCloser struct{ b backend.Backend }

func (c backendCloser) Close() error { return backend.Close(c.b) }

// StoreStats is a snapshot of a store's cache counters: tile-level
// decode/refine/hit counts, plus the storage backend's span-cache
// counters (hits, misses, origin bytes fetched, coalesced reads) for
// stores opened through OpenURL on a remote backend.
type StoreStats = store.Stats

// Stats returns the store's cache counters.
func (s *Store) Stats() StoreStats { return s.s.Stats() }

// Close releases the file handle held by OpenStoreFile (or the storage
// backend held by OpenURL); it is a no-op for stores opened on a
// caller-owned reader.
func (s *Store) Close() error {
	if s.c == nil {
		return nil
	}
	return s.c.Close()
}

// Datasets lists the container's datasets in insertion order.
func (s *Store) Datasets() []StoreDataset { return s.s.Datasets() }

// Size returns the container size in bytes.
func (s *Store) Size() int64 { return s.s.Size() }

// SetCacheBytes resizes the decoded-chunk LRU cache (default 256 MiB);
// 0 disables caching.
func (s *Store) SetCacheBytes(n int64) { s.s.SetCacheBytes(n) }

// RetrieveRegion reconstructs the box [lo, hi) of the named dataset with a
// guaranteed L∞ error of at most bound; bound 0 means full fidelity. The
// result's shape is hi-lo per dimension.
func (s *Store) RetrieveRegion(name string, lo, hi []int, bound float64) (*Region, error) {
	r, err := s.s.RetrieveRegion(name, lo, hi, bound)
	if err != nil {
		return nil, err
	}
	return &Region{r: r}, nil
}

// RetrieveDataset reconstructs a whole named dataset at the given bound.
func (s *Store) RetrieveDataset(name string, bound float64) (*Region, error) {
	r, err := s.s.RetrieveDataset(name, bound)
	if err != nil {
		return nil, err
	}
	return &Region{r: r}, nil
}

// String summarizes the container for logs.
func (s *Store) String() string {
	return fmt.Sprintf("ipcomp.Store{%d datasets, %d bytes}", len(s.s.Datasets()), s.s.Size())
}
