package client

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math"
	"net/url"
	"strconv"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/store"
	"repro/internal/wire"
)

// Region is a remotely retrieved region-of-interest reconstruction. It
// holds, per tile, the archive ranges fetched so far and the decoded
// result, so Refine can apply delta planes in place. Like ipcomp.Result,
// a Region is not safe for concurrent use.
type Region struct {
	c       *Client
	dataset string
	lo, hi  []int
	shape   []int
	scalar  core.ScalarType
	bound   float64 // tightest bound certified by the token
	token   string
	fetched int64
	data64  []float64
	data32  []float32
	chunks  map[int]*remoteChunk
}

// remoteChunk is one tile's client-side state.
type remoteChunk struct {
	lo, hi []int
	src    *sparseSource
	arch   *core.Archive
	res    *core.Result
}

// Region fetches the box [lo, hi) of the named dataset at the given
// absolute error bound (0 means full fidelity) using the progressive
// planes protocol: the response carries compressed bitplane ranges, which
// are decoded locally.
func (c *Client) Region(ctx context.Context, dataset string, lo, hi []int, bound float64) (*Region, error) {
	if len(lo) != len(hi) || len(lo) == 0 {
		return nil, fmt.Errorf("client: malformed region [%v, %v)", lo, hi)
	}
	reg := &Region{
		c:       c,
		dataset: dataset,
		lo:      append([]int(nil), lo...),
		hi:      append([]int(nil), hi...),
		chunks:  make(map[int]*remoteChunk),
	}
	reg.shape = make([]int, len(lo))
	for d := range lo {
		reg.shape[d] = hi[d] - lo[d]
	}
	if err := reg.fetch(ctx, bound, ""); err != nil {
		return nil, err
	}
	return reg, nil
}

// Refine raises the region to a tighter absolute bound by fetching only
// the delta planes beyond the retrieval token of the previous response
// and applying them in place. Refining to a bound the region already
// satisfies is a cheap no-op round trip.
func (reg *Region) Refine(ctx context.Context, bound float64) error {
	return reg.fetch(ctx, bound, reg.token)
}

func (reg *Region) fetch(ctx context.Context, bound float64, refine string) error {
	// 0 means full fidelity; anything else must be a positive finite
	// bound. Dropping a NaN/negative silently would turn a caller's
	// arithmetic bug into an expensive full-fidelity download.
	if bound < 0 || math.IsNaN(bound) || math.IsInf(bound, 0) {
		return fmt.Errorf("client: invalid error bound %g", bound)
	}
	q := url.Values{
		"lo":     {coords(reg.lo)},
		"hi":     {coords(reg.hi)},
		"format": {"planes"},
	}
	if bound > 0 {
		q.Set("bound", strconv.FormatFloat(bound, 'g', -1, 64))
	}
	if refine != "" {
		q.Set("refine", refine)
	}
	resp, err := reg.c.get(ctx, "/v1/datasets/"+url.PathEscape(reg.dataset)+"/region", q)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	token := resp.Header.Get("X-Ipcomp-Token")
	br := bufio.NewReaderSize(&countingReader{r: resp.Body, n: &reg.fetched}, 1<<16)

	h, err := wire.ReadRegionHeader(br)
	if err != nil {
		return err
	}
	if h.Rank != len(reg.lo) {
		return fmt.Errorf("client: response is rank %d, request was rank %d", h.Rank, len(reg.lo))
	}
	for d := range reg.lo {
		if h.Lo[d] != reg.lo[d] || h.Hi[d] != reg.hi[d] {
			return fmt.Errorf("client: response covers [%v, %v), request was [%v, %v)", h.Lo, h.Hi, reg.lo, reg.hi)
		}
	}
	if reg.data64 == nil && reg.data32 == nil {
		n := 1
		for _, e := range reg.shape {
			n *= e
		}
		reg.scalar = h.Scalar
		if h.Scalar == core.Float32 {
			reg.data32 = make([]float32, n)
		} else {
			reg.data64 = make([]float64, n)
		}
	} else if h.Scalar != reg.scalar {
		return fmt.Errorf("client: response scalar %v does not match region's %v", h.Scalar, reg.scalar)
	}

	for i := 0; i < h.NumChunks; i++ {
		if err := reg.readChunk(br, h.Rank); err != nil {
			return err
		}
	}
	reg.token = token
	if reg.bound == 0 || h.Bound < reg.bound {
		reg.bound = h.Bound
	}
	return nil
}

// readChunk consumes one tile frame: its spans land in the tile's sparse
// source, the decoder raises the tile to the frame's plan, and the
// overlap is copied into the region.
func (reg *Region) readChunk(br *bufio.Reader, rank int) error {
	ch, err := wire.ReadChunkHeader(br, rank)
	if err != nil {
		return err
	}
	rc := reg.chunks[ch.Index]
	if rc == nil {
		for d := range ch.Lo {
			if ch.Hi[d] <= ch.Lo[d] {
				return fmt.Errorf("client: chunk %d declares empty box [%v, %v)", ch.Index, ch.Lo, ch.Hi)
			}
		}
		rc = &remoteChunk{
			lo:  ch.Lo,
			hi:  ch.Hi,
			src: newSparseSource(ch.BlobSize),
		}
		reg.chunks[ch.Index] = rc
	} else {
		// Refinement frames must describe the same tile they did on the
		// first fetch; a drifting box would mis-place the copy-out.
		for d := range ch.Lo {
			if ch.Lo[d] != rc.lo[d] || ch.Hi[d] != rc.hi[d] {
				return fmt.Errorf("client: chunk %d moved from [%v, %v) to [%v, %v) between responses",
					ch.Index, rc.lo, rc.hi, ch.Lo, ch.Hi)
			}
		}
	}
	for s := 0; s < ch.NumSpans; s++ {
		sp, err := wire.ReadSpanHeader(br)
		if err != nil {
			return err
		}
		if sp.Len > rc.src.Size() {
			return fmt.Errorf("client: chunk %d span of %d bytes exceeds its archive size %d", ch.Index, sp.Len, rc.src.Size())
		}
		payload := make([]byte, sp.Len)
		if _, err := io.ReadFull(br, payload); err != nil {
			return fmt.Errorf("client: truncated span payload: %w", err)
		}
		if err := rc.src.insert(sp.Off, payload); err != nil {
			return err
		}
	}
	plan := core.Plan{Keep: ch.Keep}
	if rc.arch == nil {
		if rc.arch, err = core.NewArchiveFrom(rc.src); err != nil {
			return fmt.Errorf("client: chunk %d: %w", ch.Index, err)
		}
		if rc.arch.Scalar() != reg.scalar {
			return fmt.Errorf("client: chunk %d is %v, response header says %v", ch.Index, rc.arch.Scalar(), reg.scalar)
		}
		// The frame's box sizes the copy-out of the decoded tile; it must
		// agree with the shape the tile's own archive declares, or
		// CopyRegion would stride (or overrun) the decoded slice wrongly.
		shape := rc.arch.Shape()
		if len(shape) != len(rc.lo) {
			return fmt.Errorf("client: chunk %d archive is rank %d, frame says %d", ch.Index, len(shape), len(rc.lo))
		}
		for d, e := range shape {
			if e != rc.hi[d]-rc.lo[d] {
				return fmt.Errorf("client: chunk %d archive shape %v does not match frame box [%v, %v)",
					ch.Index, shape, rc.lo, rc.hi)
			}
		}
		if rc.res, err = rc.arch.Retrieve(plan); err != nil {
			return fmt.Errorf("client: chunk %d: %w", ch.Index, err)
		}
	} else {
		if err := rc.res.RefineTo(plan); err != nil {
			return fmt.Errorf("client: chunk %d: %w", ch.Index, err)
		}
	}
	reg.assimilate(rc)
	return nil
}

// assimilate copies a tile's overlap with the region into the assembled
// data at the region's native width.
func (reg *Region) assimilate(rc *remoteChunk) {
	clo, chi, ok := store.Intersect(rc.lo, rc.hi, reg.lo, reg.hi)
	if !ok {
		return
	}
	chunkShape := make([]int, len(rc.lo))
	for d := range chunkShape {
		chunkShape[d] = rc.hi[d] - rc.lo[d]
	}
	if reg.data32 != nil {
		store.CopyRegion(reg.data32, reg.shape, reg.lo, core.DataOf[float32](rc.res), chunkShape, rc.lo, clo, chi)
	} else {
		store.CopyRegion(reg.data64, reg.shape, reg.lo, core.DataOf[float64](rc.res), chunkShape, rc.lo, clo, chi)
	}
}

// Scalar returns the region's element type (the dataset's native width).
func (reg *Region) Scalar() core.ScalarType { return reg.scalar }

// Shape returns the region's extents, hi-lo per dimension.
func (reg *Region) Shape() []int { return append([]int(nil), reg.shape...) }

// Lo returns the region's inclusive origin in dataset coordinates.
func (reg *Region) Lo() []int { return append([]int(nil), reg.lo...) }

// Data returns the region's values in row-major order over Shape(), as
// float64. Float32 regions are widened into a fresh copy (lossless); use
// DataFloat32 for the shared native view.
func (reg *Region) Data() []float64 {
	if reg.data32 != nil {
		return grid.WidenSlice(reg.data32)
	}
	return reg.data64
}

// DataFloat32 returns the region's values as float32: the shared native
// slice for float32 datasets (updated in place by Refine), a narrowed
// copy for float64 ones.
func (reg *Region) DataFloat32() []float32 {
	if reg.data32 != nil {
		return reg.data32
	}
	return grid.NarrowSlice(reg.data64)
}

// GuaranteedError is the L∞ bound guaranteed across the region, computed
// from the loading plans of the locally decoded tiles.
func (reg *Region) GuaranteedError() float64 {
	worst := 0.0
	for _, rc := range reg.chunks {
		if g := rc.res.GuaranteedError(); g > worst {
			worst = g
		}
	}
	return worst
}

// Bound returns the tightest absolute bound the server has certified for
// this region (the token's bound).
func (reg *Region) Bound() float64 { return reg.bound }

// Token returns the current retrieval token; Refine sends it
// automatically, but callers sharing state across processes can persist
// it and pass it to a fresh request's refine= parameter themselves.
func (reg *Region) Token() string { return reg.token }

// FetchedBytes reports the cumulative response body bytes this region has
// consumed, across the initial fetch and every refinement.
func (reg *Region) FetchedBytes() int64 { return reg.fetched }

// Chunks reports how many tiles back the region.
func (reg *Region) Chunks() int { return len(reg.chunks) }

// countingReader tallies body bytes for FetchedBytes.
type countingReader struct {
	r io.Reader
	n *int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	*c.n += int64(n)
	return n, err
}
