// Package client is the Go client for ipcompd, the IPComp progressive
// region server (docs/PROTOCOL.md).
//
// The client speaks the planes protocol: a region request returns the
// compressed bitplane ranges of the tiles the region touches, which the
// client decodes locally into values. Refinement is incremental end to
// end — Refine sends the retrieval token from the previous response and
// receives only the additional planes the tighter bound needs, then
// updates the decoded region in place, so tightening a bound costs the
// delta bytes, not a re-download:
//
//	c := client.New("http://localhost:8080")
//	reg, _ := c.Region(ctx, "density", []int{0, 0, 0}, []int{64, 64, 64}, 1e-2)
//	coarse := reg.Data()                  // decoded at L∞ ≤ 1e-2
//	_ = reg.Refine(ctx, 1e-4)             // fetches only the delta planes
//	fine := reg.Data()                    // same region, tighter bound
package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
)

// Client talks to one ipcompd server. It is safe for concurrent use; the
// Region values it returns are not (each is a progressively refined
// reconstruction, like ipcomp.Result).
type Client struct {
	base string
	hc   *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the http.Client used for requests (for
// timeouts, transports, or test servers).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New creates a client for the server at baseURL (e.g.
// "http://localhost:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Dataset mirrors the server's dataset metadata document.
type Dataset struct {
	Name            string  `json:"name"`
	Shape           []int   `json:"shape"`
	ChunkShape      []int   `json:"chunk_shape"`
	Scalar          string  `json:"scalar"`
	ErrorBound      float64 `json:"error_bound"`
	NumChunks       int     `json:"num_chunks"`
	CompressedBytes int64   `json:"compressed_bytes"`
}

// APIError is a non-2xx response, decoded from the server's JSON error
// shape.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("ipcompd: %s (HTTP %d)", e.Message, e.Status)
}

// get issues a GET and returns the response, mapping non-2xx statuses to
// *APIError. The caller owns the body on success.
func (c *Client) get(ctx context.Context, path string, query url.Values) (*http.Response, error) {
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		apiErr := &APIError{Status: resp.StatusCode, Message: resp.Status}
		var doc struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&doc); err == nil && doc.Error != "" {
			apiErr.Message = doc.Error
		}
		return nil, apiErr
	}
	return resp, nil
}

// Datasets lists the datasets the server exposes.
func (c *Client) Datasets(ctx context.Context) ([]Dataset, error) {
	resp, err := c.get(ctx, "/v1/datasets", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var doc struct {
		Datasets []Dataset `json:"datasets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("client: decoding dataset list: %w", err)
	}
	return doc.Datasets, nil
}

// Dataset fetches one dataset's metadata.
func (c *Client) Dataset(ctx context.Context, name string) (*Dataset, error) {
	resp, err := c.get(ctx, "/v1/datasets/"+url.PathEscape(name), nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var doc Dataset
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("client: decoding dataset: %w", err)
	}
	return &doc, nil
}

// coords renders a coordinate vector as the wire's comma-separated form.
func coords(v []int) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}
