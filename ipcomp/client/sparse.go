package client

import "repro/internal/backend"

// sparseSource is a core.BlockSource over the byte ranges of a remote
// archive that the server has shipped so far. Fresh responses seed it with
// the header and the coarse plane blocks; every refinement inserts the
// delta ranges. Reads outside delivered ranges fail loudly — with correct
// plans they never happen, because the decoder reads exactly the spans the
// plan selected and the server shipped exactly those.
//
// The span store itself is backend.Sparse — the same merge-and-verify
// buffer that backs the cached storage tier — so the client's tile
// reassembly and an edge proxy's byte cache share one set of semantics:
// identical re-sent ranges merge silently (per-level plans are not
// monotone in the bound, so servers legitimately re-ship ranges), and
// diverging bytes fail loudly.
type sparseSource struct {
	sp *backend.Sparse
}

func newSparseSource(size int64) *sparseSource {
	return &sparseSource{sp: backend.NewSparse(size)}
}

// insert adds [off, off+len(b)) to the source, taking ownership of b.
func (s *sparseSource) insert(off int64, b []byte) error {
	return s.sp.Insert(off, b, 0)
}

// ReadRange implements core.BlockSource over the delivered ranges.
func (s *sparseSource) ReadRange(off int64, n int) ([]byte, error) {
	return s.sp.ReadRange(off, int64(n), 0)
}

// Size implements core.BlockSource.
func (s *sparseSource) Size() int64 { return s.sp.Size() }
