package client

import (
	"bytes"
	"fmt"
	"sort"
)

// sparseSource is a core.BlockSource over the byte ranges of a remote
// archive that the server has shipped so far. Fresh responses seed it with
// the header and the coarse plane blocks; every refinement inserts the
// delta ranges. Reads outside delivered ranges fail loudly — with correct
// plans they never happen, because the decoder reads exactly the spans the
// plan selected and the server shipped exactly those.
type sparseSource struct {
	size  int64
	spans []sparseSpan // sorted by off, non-overlapping, contiguous merged
}

type sparseSpan struct {
	off int64
	b   []byte
}

// insert adds [off, off+len(b)) to the source. Portions the source
// already holds are verified to carry identical bytes and skipped, and
// only the missing sub-ranges are stored. Tolerating re-sent ranges is
// part of the protocol, not just robustness: per-level loading plans are
// not monotone in the error bound, so a refinement token can understate
// what the client holds and the server legitimately re-ships a range the
// client applied earlier — and a Refine retried after a mid-body network
// failure replays ranges that already landed. Both must merge cleanly.
func (s *sparseSource) insert(off int64, b []byte) error {
	if off < 0 || off+int64(len(b)) > s.size {
		return fmt.Errorf("client: span [%d,%d) outside archive of %d bytes", off, off+int64(len(b)), s.size)
	}
	pos, rest := off, b
	var add []sparseSpan
	for i := range s.spans {
		if len(rest) == 0 {
			break
		}
		sp := &s.spans[i]
		spEnd := sp.off + int64(len(sp.b))
		if spEnd <= pos {
			continue
		}
		if sp.off >= pos+int64(len(rest)) {
			break
		}
		if sp.off > pos {
			// The gap [pos, sp.off) is new.
			n := sp.off - pos
			add = append(add, sparseSpan{off: pos, b: rest[:n:n]})
			pos, rest = pos+n, rest[n:]
		}
		// [pos, min(spEnd, end)) overlaps span i: verify, then skip.
		n := spEnd - pos
		if n > int64(len(rest)) {
			n = int64(len(rest))
		}
		rel := pos - sp.off
		if !bytes.Equal(sp.b[rel:rel+n], rest[:n]) {
			return fmt.Errorf("client: server re-sent range at %d with different bytes", pos)
		}
		pos, rest = pos+n, rest[n:]
	}
	if len(rest) > 0 {
		add = append(add, sparseSpan{off: pos, b: rest})
	}
	if len(add) == 0 {
		return nil
	}
	s.spans = append(s.spans, add...)
	sort.Slice(s.spans, func(i, j int) bool { return s.spans[i].off < s.spans[j].off })
	// Merge contiguous neighbours so later reads may straddle what arrived
	// as separate spans.
	merged := s.spans[:1]
	for _, sp := range s.spans[1:] {
		last := &merged[len(merged)-1]
		if last.off+int64(len(last.b)) == sp.off {
			last.b = append(last.b, sp.b...)
		} else {
			merged = append(merged, sp)
		}
	}
	s.spans = merged
	return nil
}

// ReadRange implements core.BlockSource over the delivered ranges.
func (s *sparseSource) ReadRange(off int64, n int) ([]byte, error) {
	if n < 0 || off < 0 {
		return nil, fmt.Errorf("client: invalid read [%d,+%d)", off, n)
	}
	i := sort.Search(len(s.spans), func(i int) bool { return s.spans[i].off+int64(len(s.spans[i].b)) > off })
	if i == len(s.spans) || s.spans[i].off > off || off+int64(n) > s.spans[i].off+int64(len(s.spans[i].b)) {
		return nil, fmt.Errorf("client: read [%d,%d) outside the ranges the server delivered", off, off+int64(n))
	}
	rel := off - s.spans[i].off
	return s.spans[i].b[rel : rel+int64(n)], nil
}

// Size implements core.BlockSource.
func (s *sparseSource) Size() int64 { return s.size }
