package client

import (
	"bytes"
	"testing"
)

func mustInsert(t *testing.T, s *sparseSource, off int64, b []byte) {
	t.Helper()
	if err := s.insert(off, b); err != nil {
		t.Fatalf("insert(%d, %d bytes): %v", off, len(b), err)
	}
}

func TestSparseSourceMergeAndRead(t *testing.T) {
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i)
	}
	s := &sparseSource{size: 100}
	mustInsert(t, s, 0, append([]byte(nil), data[0:10]...))
	mustInsert(t, s, 20, append([]byte(nil), data[20:30]...))
	mustInsert(t, s, 10, append([]byte(nil), data[10:20]...)) // fills the gap
	if len(s.spans) != 1 {
		t.Fatalf("contiguous inserts left %d spans", len(s.spans))
	}
	got, err := s.ReadRange(5, 20) // straddles all three original inserts
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[5:25]) {
		t.Error("merged read returned wrong bytes")
	}
	if _, err := s.ReadRange(25, 10); err == nil {
		t.Error("read past delivered ranges succeeded")
	}
	if err := s.insert(95, data[0:10]); err == nil {
		t.Error("insert past size accepted")
	}
}

// TestSparseSourceResend pins the protocol-level tolerance the refinement
// path relies on: per-level plans are not monotone in the bound, so the
// server may legitimately re-ship ranges the client already holds (and a
// retried Refine replays ranges wholesale). Identical overlaps must merge
// silently, storing only the missing sub-ranges; diverging bytes must
// fail loudly.
func TestSparseSourceResend(t *testing.T) {
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(37 * i)
	}
	s := &sparseSource{size: 100}
	mustInsert(t, s, 10, append([]byte(nil), data[10:30]...))
	mustInsert(t, s, 50, append([]byte(nil), data[50:60]...))

	// Re-send covering: a prefix overlap, the gap, and the second span.
	mustInsert(t, s, 20, append([]byte(nil), data[20:70]...))
	if len(s.spans) != 1 {
		t.Fatalf("overlapping re-send left %d spans", len(s.spans))
	}
	got, err := s.ReadRange(10, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[10:70]) {
		t.Error("re-send merge corrupted bytes")
	}

	// An exact replay (retry after a dropped connection) is a no-op.
	mustInsert(t, s, 10, append([]byte(nil), data[10:70]...))
	if len(s.spans) != 1 {
		t.Fatalf("replay left %d spans", len(s.spans))
	}

	// A re-send whose bytes disagree is stream corruption.
	bad := append([]byte(nil), data[30:40]...)
	bad[5] ^= 0xFF
	if err := s.insert(30, bad); err == nil {
		t.Error("diverging re-sent bytes accepted")
	}
}
