package ipcomp_test

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/datagen"
	"repro/ipcomp"
)

func density(t *testing.T) ([]float64, []int) {
	t.Helper()
	ds, err := datagen.Generate("Density", 12)
	if err != nil {
		t.Fatal(err)
	}
	return ds.Grid.Data(), ds.Grid.Shape()
}

func maxErr(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func TestCompressDecompressRoundTrip(t *testing.T) {
	data, shape := density(t)
	blob, err := ipcomp.Compress(data, shape, ipcomp.Options{ErrorBound: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	out, outShape, err := ipcomp.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(outShape) != len(shape) {
		t.Fatalf("shape rank %d", len(outShape))
	}
	for i := range shape {
		if outShape[i] != shape[i] {
			t.Fatalf("shape %v want %v", outShape, shape)
		}
	}
	if got := maxErr(data, out); got > 1e-4 {
		t.Errorf("error %g over bound", got)
	}
}

func TestRelativeBound(t *testing.T) {
	data, shape := density(t)
	rangeV := 0.0
	lo, hi := data[0], data[0]
	for _, v := range data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	rangeV = hi - lo
	blob, err := ipcomp.Compress(data, shape, ipcomp.Options{ErrorBound: 1e-5, Relative: true})
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := ipcomp.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxErr(data, out); got > 1e-5*rangeV {
		t.Errorf("error %g over relative bound %g", got, 1e-5*rangeV)
	}
	arch, err := ipcomp.Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(arch.ErrorBound()-1e-5*rangeV) > 1e-18 {
		t.Errorf("stored bound %g, want %g", arch.ErrorBound(), 1e-5*rangeV)
	}
}

func TestProgressiveWorkflow(t *testing.T) {
	data, shape := density(t)
	eb := 1e-7
	blob, err := ipcomp.Compress(data, shape, ipcomp.Options{ErrorBound: eb,
		ProgressiveThreshold: 512})
	if err != nil {
		t.Fatal(err)
	}
	arch, err := ipcomp.Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	res, err := arch.RetrieveErrorBound(eb * 4096)
	if err != nil {
		t.Fatal(err)
	}
	coarseLoaded := res.LoadedBytes()
	if got := maxErr(data, res.Data()); got > eb*4096 {
		t.Errorf("coarse error %g", got)
	}
	if err := res.RefineErrorBound(eb * 16); err != nil {
		t.Fatal(err)
	}
	if got := maxErr(data, res.Data()); got > eb*16*(1+1e-9) {
		t.Errorf("refined error %g over %g", got, eb*16)
	}
	if res.LoadedBytes() <= coarseLoaded {
		t.Error("refinement did not load additional bytes")
	}
	if res.LoadedBytes() > arch.CompressedSize() {
		t.Error("loaded more than the archive size")
	}
	if err := res.RefineAll(); err != nil {
		t.Fatal(err)
	}
	if got := maxErr(data, res.Data()); got > eb*(1+1e-9) {
		t.Errorf("full error %g over eb", got)
	}
}

func TestBitrateMode(t *testing.T) {
	data, shape := density(t)
	blob, err := ipcomp.Compress(data, shape, ipcomp.Options{ErrorBound: 1e-8,
		ProgressiveThreshold: 512})
	if err != nil {
		t.Fatal(err)
	}
	arch, _ := ipcomp.Open(blob)
	full := float64(arch.CompressedSize()) * 8 / float64(len(data))
	res, err := arch.RetrieveBitrate(full / 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bitrate() > full/2*1.05 && res.LoadedBytes() > arch.CompressedSize()/3 {
		t.Errorf("bitrate %g over budget %g", res.Bitrate(), full/2)
	}
	if got := maxErr(data, res.Data()); got > res.GuaranteedError() {
		t.Errorf("error %g over guarantee %g", got, res.GuaranteedError())
	}
}

func TestOpenReaderAt(t *testing.T) {
	data, shape := density(t)
	eb := 1e-6
	blob, err := ipcomp.Compress(data, shape, ipcomp.Options{ErrorBound: eb,
		ProgressiveThreshold: 512})
	if err != nil {
		t.Fatal(err)
	}
	arch, err := ipcomp.OpenReaderAt(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := arch.RetrieveErrorBound(eb * 1024)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxErr(data, res.Data()); got > eb*1024 {
		t.Errorf("reader-at error %g", got)
	}
	if res.LoadedBytes() >= int64(len(blob)) {
		t.Error("partial retrieval loaded the whole archive")
	}
}

func TestLinearInterpolationOption(t *testing.T) {
	data, shape := density(t)
	blob, err := ipcomp.Compress(data, shape, ipcomp.Options{ErrorBound: 1e-4,
		Interpolation: ipcomp.Linear})
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := ipcomp.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxErr(data, out); got > 1e-4 {
		t.Errorf("linear error %g", got)
	}
}

func TestErrors(t *testing.T) {
	data, shape := density(t)
	if _, err := ipcomp.Compress(data, shape, ipcomp.Options{}); err == nil {
		t.Error("zero bound must fail")
	}
	if _, err := ipcomp.Compress(data, []int{1, 2}, ipcomp.Options{ErrorBound: 1}); err == nil {
		t.Error("shape mismatch must fail")
	}
	if _, err := ipcomp.Open([]byte("garbage")); err == nil {
		t.Error("garbage archive must fail")
	}
	blob, _ := ipcomp.Compress(data, shape, ipcomp.Options{ErrorBound: 1e-3})
	arch, _ := ipcomp.Open(blob)
	if _, err := arch.RetrieveErrorBound(1e-9); err == nil {
		t.Error("impossible bound must fail")
	}
}

func TestConstantFieldRelativeBound(t *testing.T) {
	data := make([]float64, 512)
	for i := range data {
		data[i] = 7
	}
	blob, err := ipcomp.Compress(data, []int{8, 8, 8}, ipcomp.Options{ErrorBound: 1e-3, Relative: true})
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := ipcomp.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxErr(data, out); got > 1e-3 {
		t.Errorf("constant field error %g", got)
	}
}
