// Package ipcomp is the public API of the IPComp reproduction: an
// interpolation-based progressive lossy compressor for scientific
// floating-point data (Yang et al., "IPComp: Interpolation Based Progressive
// Lossy Compression for Scientific Applications", HPDC 2025), grown into a
// chunked, network-servable archive store.
//
// # Quick start
//
//	blob, _ := ipcomp.Compress(data, []int{256, 384, 384}, ipcomp.Options{
//		ErrorBound: 1e-6,
//	})
//	arch, _ := ipcomp.Open(blob)
//
//	// Coarse first: guarantee an L∞ error of 1e-2 while loading the
//	// fewest possible bytes.
//	res, _ := arch.RetrieveErrorBound(1e-2)
//	coarse := res.Data()
//
//	// Later: refine in place down to 1e-4 by loading only additional
//	// bitplanes (no re-decoding of what is already in memory).
//	_ = res.RefineErrorBound(1e-4)
//
// Compression guarantees |x[i] - x̂[i]| <= ErrorBound for every point at
// full fidelity; every progressive retrieval guarantees the (coarser) bound
// it was asked for. docs/FORMAT.md is the byte-level format specification.
//
// # Scalar types
//
// Scientific datasets are overwhelmingly single-precision, and the whole
// pipeline is generic over float32/float64 internally. The public surface
// deliberately exposes typed pairs instead of type parameters —
// Compress/CompressFloat32, Data/DataFloat32, Add/AddFloat32 — because an
// archive's scalar type is a runtime property of the bytes being opened:
// Open cannot return an Archive[T], so a generic surface would push a type
// assertion onto every caller. CompressFloat32 produces a version-2 archive
// that stores anchors and outliers as 4-byte floats and moves half the
// memory bandwidth through every kernel; all bound arithmetic runs in
// float64, so the full-fidelity error bound is honored exactly for both
// widths, and the optimizer folds a conservative float32 rounding slack
// (~1e-6 of the field magnitude, recorded in the v2 header) into the
// guarantee of any truncated plan, so reported bounds stay hard at every
// granularity. Choose float32 bounds above the type's ~1e-7 relative
// representational precision — tighter ones escape point by point through
// the lossless outlier path. Float64 archives remain version 1,
// byte-identical with earlier releases.
//
// # Containers and region-of-interest retrieval
//
// StoreWriter packs any number of named datasets into one container,
// tiled into independently compressed chunks; Store answers
// region-of-interest queries by opening only the tiles a box intersects,
// each at the requested fidelity, behind a goroutine-safe progressive
// tile cache (tightening a bound refines cached tiles in place). A Store
// may be shared by any number of goroutines.
//
// # Serving over HTTP
//
// cmd/ipcompd serves containers over HTTP — dataset listing, metadata,
// and progressive region retrieval where refinement responses carry only
// the delta bitplanes (docs/PROTOCOL.md). The ipcomp/client package is
// the Go client; its Region values refine in place like Result, paying
// only incremental bytes per tightened bound.
package ipcomp
