package ipcomp_test

import (
	"bytes"
	"testing"

	"repro/ipcomp"
)

// TestCodecOptionRoundTrip pins the codec plumbing through the facade:
// the default policy reproduces the legacy bytes, CodecAuto decompresses
// to the same guarantee, and the recorded policy round-trips through
// Open when the encoder upgrades the format.
func TestCodecOptionRoundTrip(t *testing.T) {
	data, shape := density(t)
	base := ipcomp.Options{ErrorBound: 1e-4}
	legacy, err := ipcomp.Compress(data, shape, base)
	if err != nil {
		t.Fatal(err)
	}
	explicit := base
	explicit.Codec = ipcomp.CodecDeflate
	same, err := ipcomp.Compress(data, shape, explicit)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacy, same) {
		t.Error("explicit CodecDeflate differs from the default encoding")
	}

	auto := base
	auto.Codec = ipcomp.CodecAuto
	blob, err := ipcomp.Compress(data, shape, auto)
	if err != nil {
		t.Fatal(err)
	}
	// Auto may trade a few bytes of v3 header overhead for block wins, so
	// sizes are close but not ordered; only correctness and the recorded
	// policy are pinned here.
	out, _, err := ipcomp.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxErr(data, out); got > 1e-4 {
		t.Errorf("error %g over bound", got)
	}
	arch, err := ipcomp.Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	switch arch.FormatVersion() {
	case 1:
		if arch.Codec() != ipcomp.CodecDeflate {
			t.Errorf("v1 archive reports codec %v", arch.Codec())
		}
	case 3:
		if arch.Codec() != ipcomp.CodecAuto {
			t.Errorf("v3 archive reports codec %v", arch.Codec())
		}
	default:
		t.Errorf("unexpected format version %d", arch.FormatVersion())
	}

	if stats := ipcomp.CodecStats(); len(stats) == 0 {
		t.Error("CodecStats empty after encoding archives")
	}
}

// TestStoreCodecOption pins the container path: chunks packed under
// CodecAuto retrieve within bound.
func TestStoreCodecOption(t *testing.T) {
	data, shape := density(t)
	pack := func(c ipcomp.Codec) []byte {
		var buf bytes.Buffer
		sw, err := ipcomp.NewStoreWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		opt := ipcomp.StoreOptions{ErrorBound: 1e-4, ChunkShape: []int{16, 16, 16}, Codec: c}
		if err := sw.Add("density", data, shape, opt); err != nil {
			t.Fatal(err)
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	autob := pack(ipcomp.CodecAuto)
	s, err := ipcomp.OpenStore(bytes.NewReader(autob), int64(len(autob)))
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.RetrieveDataset("density", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxErr(data, r.Data()); got > 1e-4 {
		t.Errorf("error %g over bound", got)
	}
}
