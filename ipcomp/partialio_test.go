package ipcomp

import (
	"bytes"
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/datagen"
	"repro/internal/grid"
)

// countingReaderAt counts bytes served so tests can assert partial I/O.
type countingReaderAt struct {
	r *bytes.Reader
	n atomic.Int64
}

func (c *countingReaderAt) ReadAt(p []byte, off int64) (int, error) {
	n, err := c.r.ReadAt(p, off)
	c.n.Add(int64(n))
	return n, err
}

// TestOpenReaderAtPartialIO pins the property the store's ROI path depends
// on: a loose-bound retrieval through io.ReaderAt reads strictly fewer
// bytes than the archive holds, because the loading plan skips the low
// bitplanes of progressive levels.
func TestOpenReaderAtPartialIO(t *testing.T) {
	g, err := datagen.GenerateShape("Density", grid.Shape{48, 48, 48})
	if err != nil {
		t.Fatal(err)
	}
	eb := 1e-7 * g.ValueRange()
	blob, err := Compress(g.Data(), g.Shape(), Options{ErrorBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	cr := &countingReaderAt{r: bytes.NewReader(blob)}
	arch, err := OpenReaderAt(cr, int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	opened := cr.n.Load() // header bytes only

	res, err := arch.RetrieveErrorBound(4096 * eb)
	if err != nil {
		t.Fatal(err)
	}
	read := cr.n.Load()
	if read >= int64(len(blob)) {
		t.Errorf("loose-bound retrieval read %d bytes of a %d-byte archive — no partial I/O", read, len(blob))
	}
	// The archive's own accounting must agree with the bytes that actually
	// crossed the ReaderAt (both include the header).
	if res.LoadedBytes() != read {
		t.Errorf("LoadedBytes()=%d, but ReaderAt served %d", res.LoadedBytes(), read)
	}
	if opened >= read {
		t.Errorf("opening read %d bytes, retrieval total %d — blocks were never read", opened, read)
	}
	for i, v := range res.Data() {
		if math.Abs(v-g.Data()[i]) > 4096*eb {
			t.Fatalf("value %d off by %g, bound %g", i, math.Abs(v-g.Data()[i]), 4096*eb)
		}
	}
}

// TestStorePublicAPI exercises the ipcomp.Store surface end to end:
// multi-dataset pack, ls, ROI retrieval, relative bounds.
func TestStorePublicAPI(t *testing.T) {
	g, err := datagen.GenerateShape("Density", grid.Shape{40, 40, 40})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sw, err := NewStoreWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	opt := StoreOptions{ErrorBound: 1e-4, Relative: true, ChunkShape: []int{16, 16, 16}}
	if err := sw.Add("density", g.Data(), g.Shape(), opt); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := OpenStore(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ds := s.Datasets()
	if len(ds) != 1 || ds[0].Name != "density" || ds[0].NumChunks != 27 {
		t.Fatalf("datasets: %+v", ds)
	}
	eb := 1e-4 * g.ValueRange()
	if math.Abs(ds[0].ErrorBound-eb)/eb > 1e-12 {
		t.Fatalf("stored bound %g, want %g", ds[0].ErrorBound, eb)
	}

	lo, hi := []int{8, 0, 8}, []int{32, 16, 40}
	reg, err := s.RetrieveRegion("density", lo, hi, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{24, 16, 32}
	for d := range want {
		if reg.Shape()[d] != want[d] {
			t.Fatalf("region shape %v, want %v", reg.Shape(), want)
		}
	}
	if len(reg.Data()) != 24*16*32 {
		t.Fatalf("region has %d values", len(reg.Data()))
	}
	// Spot-check the region against the original within the bound.
	for x := lo[0]; x < hi[0]; x += 5 {
		for y := lo[1]; y < hi[1]; y += 3 {
			for z := lo[2]; z < hi[2]; z += 7 {
				got := reg.Data()[((x-lo[0])*16+(y-lo[1]))*32+(z-lo[2])]
				if math.Abs(got-g.At(x, y, z)) > eb {
					t.Fatalf("(%d,%d,%d) off by %g > %g", x, y, z, math.Abs(got-g.At(x, y, z)), eb)
				}
			}
		}
	}
}
