package ipcomp

import (
	"bytes"
	"math"
	"testing"
)

func f32Field(n0, n1, n2 int) []float32 {
	out := make([]float32, n0*n1*n2)
	for i := range out {
		x := float64(i)
		out[i] = float32(math.Sin(x*0.01) + 0.5*math.Cos(x*0.003))
	}
	return out
}

// TestPublicFloat32Archive drives the typed public surface end to end:
// compress natively, inspect the header, retrieve progressively, refine.
func TestPublicFloat32Archive(t *testing.T) {
	shape := []int{24, 32, 40}
	data := f32Field(24, 32, 40)
	blob, err := CompressFloat32(data, shape, Options{ErrorBound: 1e-4, Relative: true})
	if err != nil {
		t.Fatal(err)
	}
	arch, err := Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	if arch.Scalar() != Float32 || arch.FormatVersion() != 2 {
		t.Fatalf("scalar %v version %d", arch.Scalar(), arch.FormatVersion())
	}
	eb := arch.ErrorBound()
	res, err := arch.RetrieveErrorBound(eb * 64)
	if err != nil {
		t.Fatal(err)
	}
	recon := res.DataFloat32()
	worst := 0.0
	for i := range data {
		if d := math.Abs(float64(data[i]) - float64(recon[i])); d > worst {
			worst = d
		}
	}
	if worst > res.GuaranteedError() {
		t.Errorf("error %g > guarantee %g", worst, res.GuaranteedError())
	}
	if err := res.RefineAll(); err != nil {
		t.Fatal(err)
	}
	worst = 0.0
	for i := range data {
		if d := math.Abs(float64(data[i]) - float64(recon[i])); d > worst {
			worst = d
		}
	}
	if worst > eb {
		t.Errorf("full-fidelity error %g > eb %g", worst, eb)
	}
	// The one-shot decompressors agree with the archive path.
	d32, shp, err := DecompressFloat32(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(shp) != 3 || shp[0] != 24 {
		t.Fatalf("shape %v", shp)
	}
	for i := range d32 {
		if d32[i] != recon[i] {
			t.Fatalf("DecompressFloat32 diverges at %d", i)
		}
	}
	d64, _, err := Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d64 {
		if d64[i] != float64(recon[i]) {
			t.Fatalf("widened Decompress diverges at %d", i)
		}
	}
}

// TestPublicFloat32Store exercises AddFloat32 and native region retrieval
// through the public store API.
func TestPublicFloat32Store(t *testing.T) {
	shape := []int{32, 32, 32}
	data := f32Field(32, 32, 32)
	var buf bytes.Buffer
	sw, err := NewStoreWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.AddFloat32("field", data, shape, StoreOptions{
		ErrorBound: 1e-4, Relative: true, ChunkShape: []int{16, 16, 16},
	}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := OpenStore(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if ds := s.Datasets(); len(ds) != 1 || ds[0].Scalar != Float32 {
		t.Fatalf("datasets %+v", ds)
	}
	reg, err := s.RetrieveRegion("field", []int{4, 4, 4}, []int{20, 24, 28}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Scalar() != Float32 {
		t.Errorf("region scalar %v", reg.Scalar())
	}
	recon := reg.DataFloat32()
	idx := 0
	for x := 4; x < 20; x++ {
		for y := 4; y < 24; y++ {
			for z := 4; z < 28; z++ {
				orig := data[(x*32+y)*32+z]
				if d := math.Abs(float64(orig) - float64(recon[idx])); d > reg.GuaranteedError() {
					t.Fatalf("point (%d,%d,%d) off by %g > %g", x, y, z, d, reg.GuaranteedError())
				}
				idx++
			}
		}
	}
}
